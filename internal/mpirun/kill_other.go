//go:build !unix

package mpirun

import (
	"errors"
	"os/exec"
)

// setProcGroup is a no-op on platforms without process groups.
func setProcGroup(cmd *exec.Cmd) {}

// killTree terminates the child process (no group semantics available).
func killTree(cmd *exec.Cmd) {
	if cmd.Process != nil {
		_ = cmd.Process.Kill()
	}
}

// exitStatus maps a cmd.Wait error to the exit code the agent mirrors.
func exitStatus(err error) int {
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		if code := ee.ExitCode(); code >= 0 {
			return code
		}
	}
	return 1
}
