//go:build unix

package mpirun

import (
	"errors"
	"os/exec"
	"syscall"
)

// setProcGroup places a child in its own process group before it starts, so
// the launcher (or its remote agent) can later terminate the whole tree —
// the component may have forked helpers that would otherwise survive it.
func setProcGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// killTree terminates the child's whole process group, falling back to the
// single process when the group signal fails.
func killTree(cmd *exec.Cmd) {
	if cmd.Process == nil {
		return
	}
	if err := syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL); err != nil {
		_ = cmd.Process.Kill()
	}
}

// exitStatus maps a cmd.Wait error to the exit code the agent mirrors:
// the child's own code, 128+signal when it died to a signal (the shell
// convention, so the launcher's report names the signal), or 1 for other
// failures.
func exitStatus(err error) int {
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
			return 128 + int(ws.Signal())
		}
		if code := ee.ExitCode(); code >= 0 {
			return code
		}
	}
	return 1
}
