package mpirun

import (
	"bufio"
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Launch defaults, applied when the corresponding LaunchSpec field is zero.
const (
	// DefaultTimeout bounds the rendezvous exchange.
	DefaultTimeout = 120 * time.Second
	// DefaultGrace is how long survivors of a failed rank get to exit
	// after the abort broadcast before their process groups are killed.
	DefaultGrace = 5 * time.Second
)

// abortSendTimeout bounds the launcher's per-rank abort delivery; remote
// hosts can be slower than loopback but an abort must never stall the
// teardown.
const abortSendTimeout = 2 * time.Second

// procResult is one reaped child: its world rank and exit error.
type procResult struct {
	rank int
	err  error
}

// Launch runs a placed MPMD job to completion: it probes the placement
// hosts, starts the rendezvous, spawns every host's rank block through the
// spec's Spawner, supervises the job, and returns nil only if every rank
// exited cleanly.
//
// Failure semantics span hosts: a rank that exits before the world is wired
// cancels the rendezvous and fails the job immediately; after wiring, the
// first abnormal exit triggers an abort broadcast to every surviving rank's
// advertised address (their blocked MPI calls return mpi.ErrAborted), and
// once spec.Grace expires the remaining process groups are killed — through
// the remote agent or daemon for ranks on other hosts. Canceling ctx aborts
// and kills the job the same way and returns ctx.Err().
func Launch(ctx context.Context, spec *LaunchSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	sp, err := spec.spawner()
	if err != nil {
		return err
	}
	timeout := spec.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	grace := spec.Grace
	if grace <= 0 {
		grace = DefaultGrace
	}

	// Pre-launch health checks: probe every placement host concurrently and
	// fail fast with a per-host report, instead of spawning into dead hosts
	// and burning the rendezvous timeout to find out.
	if prober, ok := sp.(HostProber); ok {
		if err := probeHosts(ctx, prober, spec.Hosts()); err != nil {
			return err
		}
	}

	total := len(spec.Procs)
	rvBind := spec.Bind
	if rvBind == "" && sp.WantsRoutable() {
		// Remote ranks must be able to dial back; loopback would strand them.
		rvBind = "0.0.0.0"
	}
	rv, err := NewRendezvousBind(rvBind, total)
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- rv.Serve(timeout) }()

	blocks, err := hostBlocks(spec, sp, rv.Advertised(), rvBind)
	if err != nil {
		rv.Close()
		<-serveErr
		return err
	}

	if !spec.Quiet {
		fmt.Fprintf(os.Stderr, "mphrun: world of %d ranks across %d executable(s) on %d host(s) [%s backend]; rendezvous %s\n",
			total, countExes(spec), len(spec.Hosts()), sp.Name(), rv.Advertised())
	}

	var handles []Handle
	rankHandle := make(map[int]Handle, total)
	killAll := func() {
		for _, h := range handles {
			h.Kill(-1)
		}
	}
	results := make(chan procResult, total)
	for _, hb := range blocks {
		h, err := sp.Spawn(ctx, hb.host, hb.block)
		if err != nil {
			rv.Close()
			killAll()
			for _, h := range handles {
				h.Wait()
			}
			<-serveErr
			return fmt.Errorf("spawn on host %q: %w", hb.host, err)
		}
		handles = append(handles, h)
		for _, p := range hb.block.Procs {
			rankHandle[p.Rank] = h
		}
		go func(h Handle) {
			for e := range h.Exits() {
				results <- procResult{rank: e.Rank, err: e.Err}
			}
		}(h)
	}

	// Exit bookkeeping; everything below runs on this goroutine only.
	exitErr := make([]error, total)
	exited := make([]bool, total)
	reaped := 0
	primary := -1 // first abnormally-exiting rank
	record := func(r procResult) {
		reaped++
		exited[r.rank] = true
		exitErr[r.rank] = r.err
		if r.err != nil && primary < 0 {
			primary = r.rank
		}
	}
	drainRest := func() {
		for reaped < total {
			record(<-results)
		}
		for _, h := range handles {
			h.Wait()
		}
	}

	// Phase 1: wait for the world to wire up, watching for children that
	// die first and for ctx cancellation.
	wired := false
	for !wired {
		select {
		case <-ctx.Done():
			rv.Close()
			<-serveErr
			killAll()
			drainRest()
			return ctx.Err()
		case err := <-serveErr:
			if err != nil {
				killAll()
				drainRest()
				return fmt.Errorf("rendezvous: %w", err)
			}
			wired = true
		case r := <-results:
			// A fast job can finish a rank between the rendezvous reply
			// and Serve's return; check for that before declaring the
			// exit premature.
			select {
			case err := <-serveErr:
				if err != nil {
					record(r)
					killAll()
					drainRest()
					return fmt.Errorf("rendezvous: %w", err)
				}
				wired = true
				record(r)
			default:
				// A rank exited before the world was wired — whatever its
				// status, the job cannot proceed. Cancel the rendezvous so
				// Serve returns now rather than waiting out the full
				// timeout with the launcher blocked behind it.
				record(r)
				rv.Close()
				if err := <-serveErr; err == nil {
					// Serve completed in the closing window after all; the
					// world is wired, supervise normally.
					wired = true
					break
				}
				killAll()
				drainRest()
				if r.err != nil {
					return fmt.Errorf("rank %d exited before rendezvous completed: %w", r.rank, r.err)
				}
				return fmt.Errorf("rank %d exited before rendezvous completed", r.rank)
			}
		}
	}

	// Phase 2: supervise the running job. On the first abnormal exit,
	// broadcast a launcher abort so every survivor's blocked MPI calls —
	// on every host — fail with mpi.ErrAborted, then give them grace to
	// exit on their own before killing the remaining process groups
	// (through the agents or daemons for remote ranks).
	book := rv.Book()
	aborted := false
	var graceCh <-chan time.Time
	maybeAbort := func() {
		if primary < 0 || aborted {
			return
		}
		aborted = true
		survivors := 0
		for rank := range spec.Procs {
			if !exited[rank] {
				survivors++
			}
		}
		if survivors == 0 {
			return
		}
		fmt.Fprintf(os.Stderr, "mphrun: rank %d%s failed; aborting %d surviving rank(s) (grace %v)\n",
			primary, hostTag(spec.Procs[primary].Host), survivors, grace)
		broadcastAbort(book, exited)
		graceCh = time.After(grace)
	}
	maybeAbort()
	canceled := false
	for reaped < total {
		select {
		case <-ctx.Done():
			if !canceled {
				canceled = true
				broadcastAbort(book, exited)
				killAll()
			}
			record(<-results)
		case r := <-results:
			record(r)
			maybeAbort()
		case <-graceCh:
			graceCh = nil
			fmt.Fprintln(os.Stderr, "mphrun: grace period expired; killing surviving process groups")
			for rank := range spec.Procs {
				if !exited[rank] {
					rankHandle[rank].Kill(rank)
				}
			}
		}
	}
	for _, h := range handles {
		h.Wait()
	}
	if canceled {
		return ctx.Err()
	}
	return failureReport(spec, exitErr, primary)
}

// hostBlock pairs a placement host with its assembled Block.
type hostBlock struct {
	host  string
	block Block
}

// hostBlocks groups the spec's ranks into per-host blocks in first-use host
// order and fills in the job-wide launch context each spawner needs. The
// registration file is shipped both ways — as the launcher-local path (for
// the direct spawner) and as base64 contents (for spawners that cross a
// host boundary).
func hostBlocks(spec *LaunchSpec, sp Spawner, rvAddr, bind string) ([]hostBlock, error) {
	regdata := ""
	if spec.Registration != "" {
		if _, isLocal := sp.(*LocalSpawner); !isLocal {
			data, err := os.ReadFile(spec.Registration)
			if err != nil {
				return nil, fmt.Errorf("mpirun: read registration: %w", err)
			}
			regdata = base64.StdEncoding.EncodeToString(data)
		}
	}
	base := Block{
		Size:         len(spec.Procs),
		Rendezvous:   rvAddr,
		Registration: spec.Registration,
		Regdata:      regdata,
		Bind:         bind,
		ExtraEnv:     spec.ExtraEnv,
		Passthrough:  passthroughEnv(os.Environ()),
	}
	var blocks []hostBlock
	index := make(map[string]int)
	for _, p := range spec.Procs {
		i, ok := index[p.Host]
		if !ok {
			i = len(blocks)
			index[p.Host] = i
			b := base
			blocks = append(blocks, hostBlock{host: p.Host, block: b})
		}
		blocks[i].block.Procs = append(blocks[i].block.Procs, p)
	}
	return blocks, nil
}

// probeTimeout bounds the whole pre-launch host health check.
const probeTimeout = 15 * time.Second

// probeHosts checks every placement host concurrently through the
// spawner's prober and returns a per-host failure report if any are
// unreachable.
func probeHosts(ctx context.Context, p HostProber, hosts []string) error {
	ctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	errs := make([]error, len(hosts))
	var wg sync.WaitGroup
	for i, host := range hosts {
		wg.Add(1)
		go func(i int, host string) {
			defer wg.Done()
			errs[i] = p.ProbeHost(ctx, host)
		}(i, host)
	}
	wg.Wait()
	var bad []string
	for i, err := range errs {
		if err != nil {
			name := hosts[i]
			if name == "" {
				name = "(launcher host)"
			}
			bad = append(bad, fmt.Sprintf("  %s: %v", name, err))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("mpirun: host check failed for %d of %d host(s):\n%s",
		len(bad), len(hosts), strings.Join(bad, "\n"))
}

// countExes returns the number of distinct spec entries among the procs.
func countExes(spec *LaunchSpec) int {
	max := -1
	for _, p := range spec.Procs {
		if p.Exe > max {
			max = p.Exe
		}
	}
	return max + 1
}

// hostTag renders "@host" for remote ranks, "" for local ones.
func hostTag(host string) string {
	if host == "" {
		return ""
	}
	return "@" + host
}

// broadcastAbort pushes a launcher abort (origin AbortOriginLauncher, code
// 1) to the advertised address of every rank that has not exited yet. Best
// effort and parallel: a rank that died without being reaped yet simply
// refuses the dial.
func broadcastAbort(book []Endpoint, exited []bool) {
	var wg sync.WaitGroup
	for rank, ep := range book {
		if rank < len(exited) && exited[rank] {
			continue
		}
		wg.Add(1)
		go func(rank int, ep Endpoint) {
			defer wg.Done()
			if err := SendAbort(ep.Addr, 1, AbortOriginLauncher, abortSendTimeout); err != nil {
				fmt.Fprintf(os.Stderr, "mphrun: abort to rank %d%s (%s): %v\n", rank, hostTag(ep.Host), ep.Addr, err)
			}
		}(rank, ep)
	}
	wg.Wait()
}

// failureReport summarises abnormal exits grouped per component executable,
// or returns nil when every rank exited cleanly. primary is the first rank
// whose failure was observed (-1 if none); the others typically failed as
// collateral — aborted by the launcher or killed after the grace period.
func failureReport(spec *LaunchSpec, exitErr []error, primary int) error {
	failed := 0
	for _, err := range exitErr {
		if err != nil {
			failed++
		}
	}
	if failed == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "job failed: %d of %d rank(s) exited abnormally", failed, len(spec.Procs))
	for ei := 0; ei < countExes(spec); ei++ {
		var bad []string
		ranks := 0
		var argv []string
		for _, p := range spec.Procs {
			if p.Exe != ei {
				continue
			}
			ranks++
			if argv == nil {
				argv = p.Argv
			}
			if exitErr[p.Rank] == nil {
				continue
			}
			s := fmt.Sprintf("rank %d%s: %v", p.Rank, hostTag(p.Host), exitErr[p.Rank])
			if p.Rank == primary {
				s += " (first failure)"
			}
			bad = append(bad, s)
		}
		status := "ok"
		if len(bad) > 0 {
			status = strings.Join(bad, "; ")
		}
		fmt.Fprintf(&b, "\n  exe%d [%s] (%d rank(s)): %s", ei, strings.Join(argv, " "), ranks, status)
	}
	return errors.New(b.String())
}

// relayBufSize is the relay's line buffer: lines up to this length are
// emitted intact; longer ones degrade to prefixed chunks of this size.
const relayBufSize = 1 << 20

// relay copies a child stream line by line with a rank prefix. A line longer
// than relayBufSize is degraded to prefixed chunks rather than truncating
// the stream: the Scanner this replaces stopped at its first ErrTooLong and
// silently discarded everything the child printed afterwards — including
// the panic traces and oversized log records that most need relaying. Read
// errors other than EOF are reported to the launcher's stderr so a dying
// pipe is visible instead of looking like a quiet child.
func relay(dst io.Writer, src io.Reader, prefix string, wg *sync.WaitGroup) {
	defer wg.Done()
	br := bufio.NewReaderSize(src, relayBufSize)
	for {
		line, err := br.ReadSlice('\n')
		if len(line) > 0 {
			if n := len(line); line[n-1] == '\n' {
				line = line[:n-1]
				if m := len(line); m > 0 && line[m-1] == '\r' {
					line = line[:m-1]
				}
			}
			fmt.Fprintf(dst, "%s%s\n", prefix, line)
		}
		switch {
		case err == nil:
		case errors.Is(err, bufio.ErrBufferFull):
			// Oversized line: the full buffer was just emitted as one
			// prefixed chunk; keep draining the rest of the same line.
		case errors.Is(err, io.EOF):
			return
		default:
			// A closed pipe is the ordinary teardown race (cmd.Wait closes
			// the child's pipes while the relay drains); only unexpected
			// errors are worth the operator's attention.
			if !errors.Is(err, os.ErrClosed) && !errors.Is(err, io.ErrClosedPipe) {
				fmt.Fprintf(os.Stderr, "mphrun: output relay for %sstream failed: %v\n", prefix, err)
			}
			return
		}
	}
}
