package mpirun

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// Launch defaults, applied when the corresponding LaunchSpec field is zero.
const (
	// DefaultTimeout bounds the rendezvous exchange.
	DefaultTimeout = 120 * time.Second
	// DefaultGrace is how long survivors of a failed rank get to exit
	// after the abort broadcast before their process groups are killed.
	DefaultGrace = 5 * time.Second
)

// abortSendTimeout bounds the launcher's per-rank abort delivery; remote
// hosts can be slower than loopback but an abort must never stall the
// teardown.
const abortSendTimeout = 2 * time.Second

// procResult is one reaped child: its world rank and cmd.Wait error.
type procResult struct {
	rank int
	err  error
}

// Launch runs a placed MPMD job to completion: it starts the rendezvous,
// spawns every rank on its host through the spec's backend, supervises the
// job, and returns nil only if every rank exited cleanly.
//
// Failure semantics span hosts: a rank that exits before the world is wired
// cancels the rendezvous and fails the job immediately; after wiring, the
// first abnormal exit triggers an abort broadcast to every surviving rank's
// advertised address (their blocked MPI calls return mpi.ErrAborted), and
// once spec.Grace expires the remaining process groups are killed — through
// the remote agent for ranks on other hosts. Canceling ctx aborts and kills
// the job the same way and returns ctx.Err().
func Launch(ctx context.Context, spec *LaunchSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	backend, _ := ParseBackend(string(spec.Backend)) // validated by spec.Validate
	timeout := spec.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	grace := spec.Grace
	if grace <= 0 {
		grace = DefaultGrace
	}

	total := len(spec.Procs)
	rvBind := spec.Bind
	if rvBind == "" && backend == BackendSSH {
		// Remote ranks must be able to dial back; loopback would strand them.
		rvBind = "0.0.0.0"
	}
	rv, err := NewRendezvousBind(rvBind, total)
	if err != nil {
		return err
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- rv.Serve(timeout) }()

	st, err := newStarter(spec, backend, rv.Advertised())
	if err != nil {
		rv.Close()
		<-serveErr
		return err
	}

	fmt.Fprintf(os.Stderr, "mphrun: world of %d ranks across %d executable(s) on %d host(s) [%s backend]; rendezvous %s\n",
		total, countExes(spec), len(spec.Hosts()), backend, rv.Advertised())

	var children []*child
	var outWG sync.WaitGroup
	killAll := func() {
		for _, c := range children {
			c.kill()
		}
	}
	for _, p := range spec.Procs {
		c, err := st.start(p, &outWG)
		if err != nil {
			rv.Close()
			killAll()
			return err
		}
		children = append(children, c)
	}

	// Reap each child on its own goroutine so a process that dies before
	// the rendezvous completes aborts the job immediately instead of
	// leaving the launcher waiting out the timeout.
	results := make(chan procResult, len(children))
	for _, c := range children {
		go func(c *child) {
			err := c.cmd.Wait()
			close(c.done)
			results <- procResult{rank: c.rank, err: err}
		}(c)
	}

	// Exit bookkeeping; everything below runs on this goroutine only.
	exitErr := make([]error, total)
	exited := make([]bool, total)
	reaped := 0
	primary := -1 // first abnormally-exiting rank
	record := func(r procResult) {
		reaped++
		exited[r.rank] = true
		exitErr[r.rank] = r.err
		if r.err != nil && primary < 0 {
			primary = r.rank
		}
	}
	drainRest := func() {
		for reaped < len(children) {
			record(<-results)
		}
		outWG.Wait()
	}

	// Phase 1: wait for the world to wire up, watching for children that
	// die first and for ctx cancellation.
	wired := false
	for !wired {
		select {
		case <-ctx.Done():
			rv.Close()
			<-serveErr
			killAll()
			drainRest()
			return ctx.Err()
		case err := <-serveErr:
			if err != nil {
				killAll()
				drainRest()
				return fmt.Errorf("rendezvous: %w", err)
			}
			wired = true
		case r := <-results:
			// A fast job can finish a rank between the rendezvous reply
			// and Serve's return; check for that before declaring the
			// exit premature.
			select {
			case err := <-serveErr:
				if err != nil {
					record(r)
					killAll()
					drainRest()
					return fmt.Errorf("rendezvous: %w", err)
				}
				wired = true
				record(r)
			default:
				// A rank exited before the world was wired — whatever its
				// status, the job cannot proceed. Cancel the rendezvous so
				// Serve returns now rather than waiting out the full
				// timeout with the launcher blocked behind it.
				record(r)
				rv.Close()
				if err := <-serveErr; err == nil {
					// Serve completed in the closing window after all; the
					// world is wired, supervise normally.
					wired = true
					break
				}
				killAll()
				drainRest()
				if r.err != nil {
					return fmt.Errorf("rank %d exited before rendezvous completed: %w", r.rank, r.err)
				}
				return fmt.Errorf("rank %d exited before rendezvous completed", r.rank)
			}
		}
	}

	// Phase 2: supervise the running job. On the first abnormal exit,
	// broadcast a launcher abort so every survivor's blocked MPI calls —
	// on every host — fail with mpi.ErrAborted, then give them grace to
	// exit on their own before killing the remaining process groups
	// (through the agents for remote ranks).
	book := rv.Book()
	aborted := false
	var graceCh <-chan time.Time
	maybeAbort := func() {
		if primary < 0 || aborted {
			return
		}
		aborted = true
		survivors := 0
		for _, c := range children {
			if !exited[c.rank] {
				survivors++
			}
		}
		if survivors == 0 {
			return
		}
		fmt.Fprintf(os.Stderr, "mphrun: rank %d%s failed; aborting %d surviving rank(s) (grace %v)\n",
			primary, hostTag(children[primary].host), survivors, grace)
		broadcastAbort(book, exited)
		graceCh = time.After(grace)
	}
	maybeAbort()
	canceled := false
	for reaped < len(children) {
		select {
		case <-ctx.Done():
			if !canceled {
				canceled = true
				broadcastAbort(book, exited)
				killAll()
			}
			record(<-results)
		case r := <-results:
			record(r)
			maybeAbort()
		case <-graceCh:
			graceCh = nil
			fmt.Fprintln(os.Stderr, "mphrun: grace period expired; killing surviving process groups")
			for _, c := range children {
				if !exited[c.rank] {
					c.kill()
				}
			}
		}
	}
	outWG.Wait()
	if canceled {
		return ctx.Err()
	}
	return failureReport(spec, children, exitErr, primary)
}

// countExes returns the number of distinct spec entries among the procs.
func countExes(spec *LaunchSpec) int {
	max := -1
	for _, p := range spec.Procs {
		if p.Exe > max {
			max = p.Exe
		}
	}
	return max + 1
}

// hostTag renders "@host" for remote ranks, "" for local ones.
func hostTag(host string) string {
	if host == "" {
		return ""
	}
	return "@" + host
}

// broadcastAbort pushes a launcher abort (origin AbortOriginLauncher, code
// 1) to the advertised address of every rank that has not exited yet. Best
// effort and parallel: a rank that died without being reaped yet simply
// refuses the dial.
func broadcastAbort(book []Endpoint, exited []bool) {
	var wg sync.WaitGroup
	for rank, ep := range book {
		if rank < len(exited) && exited[rank] {
			continue
		}
		wg.Add(1)
		go func(rank int, ep Endpoint) {
			defer wg.Done()
			if err := SendAbort(ep.Addr, 1, AbortOriginLauncher, abortSendTimeout); err != nil {
				fmt.Fprintf(os.Stderr, "mphrun: abort to rank %d%s (%s): %v\n", rank, hostTag(ep.Host), ep.Addr, err)
			}
		}(rank, ep)
	}
	wg.Wait()
}

// failureReport summarises abnormal exits grouped per component executable,
// or returns nil when every rank exited cleanly. primary is the first rank
// whose failure was observed (-1 if none); the others typically failed as
// collateral — aborted by the launcher or killed after the grace period.
func failureReport(spec *LaunchSpec, children []*child, exitErr []error, primary int) error {
	failed := 0
	for _, err := range exitErr {
		if err != nil {
			failed++
		}
	}
	if failed == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "job failed: %d of %d rank(s) exited abnormally", failed, len(spec.Procs))
	for ei := 0; ei < countExes(spec); ei++ {
		var bad []string
		ranks := 0
		var argv []string
		for _, c := range children {
			if c.exe != ei {
				continue
			}
			ranks++
			if argv == nil {
				argv = spec.Procs[c.rank].Argv
			}
			if exitErr[c.rank] == nil {
				continue
			}
			s := fmt.Sprintf("rank %d%s: %v", c.rank, hostTag(c.host), exitErr[c.rank])
			if c.rank == primary {
				s += " (first failure)"
			}
			bad = append(bad, s)
		}
		status := "ok"
		if len(bad) > 0 {
			status = strings.Join(bad, "; ")
		}
		fmt.Fprintf(&b, "\n  exe%d [%s] (%d rank(s)): %s", ei, strings.Join(argv, " "), ranks, status)
	}
	return errors.New(b.String())
}

// relayBufSize is the relay's line buffer: lines up to this length are
// emitted intact; longer ones degrade to prefixed chunks of this size.
const relayBufSize = 1 << 20

// relay copies a child stream line by line with a rank prefix. A line longer
// than relayBufSize is degraded to prefixed chunks rather than truncating
// the stream: the Scanner this replaces stopped at its first ErrTooLong and
// silently discarded everything the child printed afterwards — including
// the panic traces and oversized log records that most need relaying. Read
// errors other than EOF are reported to the launcher's stderr so a dying
// pipe is visible instead of looking like a quiet child.
func relay(dst io.Writer, src io.Reader, prefix string, wg *sync.WaitGroup) {
	defer wg.Done()
	br := bufio.NewReaderSize(src, relayBufSize)
	for {
		line, err := br.ReadSlice('\n')
		if len(line) > 0 {
			if n := len(line); line[n-1] == '\n' {
				line = line[:n-1]
				if m := len(line); m > 0 && line[m-1] == '\r' {
					line = line[:m-1]
				}
			}
			fmt.Fprintf(dst, "%s%s\n", prefix, line)
		}
		switch {
		case err == nil:
		case errors.Is(err, bufio.ErrBufferFull):
			// Oversized line: the full buffer was just emitted as one
			// prefixed chunk; keep draining the rest of the same line.
		case errors.Is(err, io.EOF):
			return
		default:
			// A closed pipe is the ordinary teardown race (cmd.Wait closes
			// the child's pipes while the relay drains); only unexpected
			// errors are worth the operator's attention.
			if !errors.Is(err, os.ErrClosed) && !errors.Is(err, io.ErrClosedPipe) {
				fmt.Fprintf(os.Stderr, "mphrun: output relay for %sstream failed: %v\n", prefix, err)
			}
			return
		}
	}
}
