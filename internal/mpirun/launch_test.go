package mpirun

import (
	"bytes"
	"io"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// runRelay pushes input through the relay and returns everything it wrote.
func runRelay(t *testing.T, input string, prefix string) string {
	t.Helper()
	var out bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(1)
	relay(&out, strings.NewReader(input), prefix, &wg)
	wg.Wait()
	return out.String()
}

// TestRelayPrefixesLines covers the ordinary path: every line gains the rank
// prefix, CRLF endings are normalized, and a final unterminated line is
// still delivered.
func TestRelayPrefixesLines(t *testing.T) {
	got := runRelay(t, "alpha\nbeta\r\ntail", "[rank 3] ")
	want := "[rank 3] alpha\n[rank 3] beta\n[rank 3] tail\n"
	if got != want {
		t.Fatalf("relay output %q, want %q", got, want)
	}
}

// TestRelayOversizedLine is the truncation regression test: a line well past
// the relay buffer must come through in full — as several prefixed chunks —
// and the stream must keep relaying afterwards. The Scanner-based relay this
// pins against stopped dead at the oversized line and silently dropped it
// and every line after it.
func TestRelayOversizedLine(t *testing.T) {
	const prefix = "[rank 0] "
	big := strings.Repeat("a", 3<<20) // 3 MiB, three times the relay buffer
	got := runRelay(t, big+"\nshort\n", prefix)

	lines := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("oversized line relayed as %d line(s), want >= 3 chunks plus the trailing short line", len(lines))
	}
	if last := lines[len(lines)-1]; last != prefix+"short" {
		t.Fatalf("line after the oversized one came through as %q, want %q", last, prefix+"short")
	}
	var rebuilt strings.Builder
	for _, ln := range lines[:len(lines)-1] {
		chunk, ok := strings.CutPrefix(ln, prefix)
		if !ok {
			t.Fatalf("relayed chunk missing rank prefix: %.40q", ln)
		}
		rebuilt.WriteString(chunk)
	}
	if rebuilt.String() != big {
		t.Fatalf("oversized line truncated: relayed %d of %d bytes", rebuilt.Len(), len(big))
	}
}

// TestRelayEmptyStream must write nothing, not an empty prefixed line.
func TestRelayEmptyStream(t *testing.T) {
	if got := runRelay(t, "", "[rank 1] "); got != "" {
		t.Fatalf("relay of empty stream produced %q", got)
	}
}

// closingReader yields its payload, then fails with os.ErrClosed — the
// teardown race a child pipe hits when cmd.Wait closes it under the relay.
type closingReader struct{ r io.Reader }

func (c *closingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if err == io.EOF {
		err = os.ErrClosed
	}
	return n, err
}

// TestRelayStopsOnClosedPipe pins that a mid-stream pipe closure terminates
// the relay after delivering what was buffered, rather than spinning or
// dropping the partial line.
func TestRelayStopsOnClosedPipe(t *testing.T) {
	var out bytes.Buffer
	var wg sync.WaitGroup
	wg.Add(1)
	done := make(chan struct{})
	go func() {
		relay(&out, &closingReader{strings.NewReader("last words")}, "[rank 2] ", &wg)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("relay did not return after the pipe closed")
	}
	if got, want := out.String(), "[rank 2] last words\n"; got != want {
		t.Fatalf("relay output %q, want %q", got, want)
	}
}
