// Package mpirun holds the process-bootstrap protocol shared by the mphrun
// launcher and the worker processes of a true multi-executable (MPMD) job:
// environment-variable conventions and the rendezvous exchange that wires
// the TCP world together.
//
// The launcher plays the role of the paper's vendor MPP-run command
// ("poe -pgmmodel mpmd -cmdfile ..." on the IBM SP, §6): it assigns
// contiguous world-rank blocks to the executables of a cmdfile, then acts
// as the rendezvous point through which every rank learns every other
// rank's listen address. After rendezvous the launcher is out of the data
// path: ranks talk directly over their own TCP connections, and — exactly
// as the paper describes — share nothing but the world communicator until
// MPH hands them component communicators.
package mpirun

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrRendezvousClosed is returned by Serve when the exchange was canceled
// with Close before every rank registered — the launcher's way of tearing
// the rendezvous down promptly once a child has already failed.
var ErrRendezvousClosed = errors.New("mpirun: rendezvous closed")

// Environment variables carrying the launch context to worker processes.
const (
	// EnvRank is the process's world rank.
	EnvRank = "MPH_RANK"
	// EnvSize is the world size.
	EnvSize = "MPH_NPROCS"
	// EnvRendezvous is the launcher's rendezvous address.
	EnvRendezvous = "MPH_RENDEZVOUS"
	// EnvRegistration is the path of the registration file, forwarded so
	// every executable can name the same file.
	EnvRegistration = "MPH_REGISTRATION"
)

// Launched reports whether the process was started by mphrun (or an
// equivalent launcher) and should bootstrap a TCP world.
func Launched() bool {
	return os.Getenv(EnvRank) != "" && os.Getenv(EnvSize) != "" && os.Getenv(EnvRendezvous) != ""
}

// FromEnv reads the launch context.
func FromEnv() (rank, size int, rendezvous, registration string, err error) {
	rank, err = strconv.Atoi(os.Getenv(EnvRank))
	if err != nil {
		return 0, 0, "", "", fmt.Errorf("mpirun: bad %s: %w", EnvRank, err)
	}
	size, err = strconv.Atoi(os.Getenv(EnvSize))
	if err != nil {
		return 0, 0, "", "", fmt.Errorf("mpirun: bad %s: %w", EnvSize, err)
	}
	rendezvous = os.Getenv(EnvRendezvous)
	if rendezvous == "" {
		return 0, 0, "", "", fmt.Errorf("mpirun: %s not set", EnvRendezvous)
	}
	if rank < 0 || rank >= size {
		return 0, 0, "", "", fmt.Errorf("mpirun: rank %d out of world of %d", rank, size)
	}
	return rank, size, rendezvous, os.Getenv(EnvRegistration), nil
}

// Rendezvous is the launcher-side address exchange: it accepts one
// connection per rank, collects (rank, listen address) pairs, and answers
// each with the complete address book.
//
// Wire protocol, one line each way:
//
//	worker:   "<rank> <host:port>\n"
//	launcher: "<addr0> <addr1> ... <addrN-1>\n"
type Rendezvous struct {
	ln   net.Listener
	size int

	closed atomic.Bool

	mu    sync.Mutex
	addrs []string // complete address book, set when Serve succeeds
}

// NewRendezvous starts the exchange for a world of the given size on a
// loopback port.
func NewRendezvous(size int) (*Rendezvous, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpirun: rendezvous for world of %d", size)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("mpirun: rendezvous listen: %w", err)
	}
	return &Rendezvous{ln: ln, size: size}, nil
}

// Addr returns the address workers should register with.
func (r *Rendezvous) Addr() string { return r.ln.Addr().String() }

// Close cancels the exchange: a Serve in progress returns
// ErrRendezvousClosed instead of waiting out its timeout. Safe to call
// concurrently with Serve and more than once.
func (r *Rendezvous) Close() {
	if r.closed.CompareAndSwap(false, true) {
		r.ln.Close()
	}
}

// Addrs returns the completed address book (indexed by world rank), or nil
// if Serve has not finished successfully. The launcher uses it to reach
// surviving ranks when broadcasting an abort.
func (r *Rendezvous) Addrs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.addrs == nil {
		return nil
	}
	out := make([]string, len(r.addrs))
	copy(out, r.addrs)
	return out
}

// Serve runs the exchange to completion: it accepts every rank's
// registration, then answers each with the full address book, and closes
// the listener. The timeout bounds the whole exchange.
func (r *Rendezvous) Serve(timeout time.Duration) error {
	defer r.ln.Close()
	deadline := time.Now().Add(timeout)

	addrs := make([]string, r.size)
	conns := make([]net.Conn, r.size)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()

	for got := 0; got < r.size; got++ {
		if l, ok := r.ln.(*net.TCPListener); ok {
			if err := l.SetDeadline(deadline); err != nil {
				return err
			}
		}
		conn, err := r.ln.Accept()
		if err != nil {
			if r.closed.Load() {
				return ErrRendezvousClosed
			}
			return fmt.Errorf("mpirun: rendezvous accept (%d/%d registered): %w", got, r.size, err)
		}
		if err := conn.SetDeadline(deadline); err != nil {
			conn.Close()
			return err
		}
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			conn.Close()
			return fmt.Errorf("mpirun: rendezvous read: %w", err)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			conn.Close()
			return fmt.Errorf("mpirun: malformed registration %q", strings.TrimSpace(line))
		}
		rank, err := strconv.Atoi(fields[0])
		if err != nil || rank < 0 || rank >= r.size {
			conn.Close()
			return fmt.Errorf("mpirun: registration with bad rank %q", fields[0])
		}
		if conns[rank] != nil {
			conn.Close()
			return fmt.Errorf("mpirun: rank %d registered twice", rank)
		}
		addrs[rank] = fields[1]
		conns[rank] = conn
	}

	book := strings.Join(addrs, " ") + "\n"
	for rank, conn := range conns {
		if _, err := conn.Write([]byte(book)); err != nil {
			return fmt.Errorf("mpirun: rendezvous reply to rank %d: %w", rank, err)
		}
	}
	r.mu.Lock()
	r.addrs = addrs
	r.mu.Unlock()
	return nil
}

// Register is the worker side: it reports this rank's listen address to the
// rendezvous and returns the full address book (indexed by rank).
func Register(rendezvous string, rank int, listenAddr string, timeout time.Duration) ([]string, error) {
	conn, err := net.DialTimeout("tcp", rendezvous, timeout)
	if err != nil {
		return nil, fmt.Errorf("mpirun: dial rendezvous %s: %w", rendezvous, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if _, err := fmt.Fprintf(conn, "%d %s\n", rank, listenAddr); err != nil {
		return nil, fmt.Errorf("mpirun: register rank %d: %w", rank, err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("mpirun: read address book: %w", err)
	}
	addrs := strings.Fields(line)
	if rank >= len(addrs) {
		return nil, fmt.Errorf("mpirun: address book has %d entries, rank is %d", len(addrs), rank)
	}
	return addrs, nil
}
