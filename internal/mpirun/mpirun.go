// Package mpirun holds the process-bootstrap protocol shared by the mphrun
// launcher and the worker processes of a true multi-executable (MPMD) job —
// environment-variable conventions and the rendezvous exchange that wires
// the TCP world together — plus the launcher itself: LaunchSpec describes a
// placed job and Launch runs it, locally or across hosts.
//
// The launcher plays the role of the paper's vendor MPP-run command
// ("poe -pgmmodel mpmd -cmdfile ..." on the IBM SP, §6): it assigns
// contiguous world-rank blocks to the executables of a cmdfile, places each
// rank on a host (block, cyclic, or pinned placement over a hostfile), then
// acts as the rendezvous point through which every rank learns every other
// rank's listen address and host. After rendezvous the launcher is out of
// the data path: ranks talk directly over their own TCP connections, and —
// exactly as the paper describes — share nothing but the world communicator
// until MPH hands them component communicators.
package mpirun

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrRendezvousClosed is returned by Serve when the exchange was canceled
// with Close before every rank registered — the launcher's way of tearing
// the rendezvous down promptly once a child has already failed.
var ErrRendezvousClosed = errors.New("mpirun: rendezvous closed")

// Environment variables carrying the launch context to worker processes.
const (
	// EnvRank is the process's world rank.
	EnvRank = "MPH_RANK"
	// EnvSize is the world size.
	EnvSize = "MPH_NPROCS"
	// EnvRendezvous is the launcher's rendezvous address.
	EnvRendezvous = "MPH_RENDEZVOUS"
	// EnvRegistration is the path of the registration file, forwarded so
	// every executable can name the same file.
	EnvRegistration = "MPH_REGISTRATION"
	// EnvHost is the placement host label the launcher assigned this rank.
	// It feeds the per-rank host topology (mpi.Comm.HostOf); transports fall
	// back to os.Hostname when it is unset.
	EnvHost = "MPH_HOST"
	// EnvBind is the host or IP worker listeners bind ("" = loopback). The
	// launcher sets it for multi-host jobs so rank listen addresses are
	// routable from other hosts; a wildcard value (0.0.0.0, ::, *) binds all
	// interfaces and advertises a detected routable IP.
	EnvBind = "MPH_BIND"
)

// Env is the typed launch context a worker process reads from its
// environment. It replaces the positional (rank, size, rendezvous,
// registration) quadruple that every new launch variable previously forced
// through the whole call chain.
type Env struct {
	// Rank is the process's world rank.
	Rank int
	// Size is the world size.
	Size int
	// Rendezvous is the launcher's rendezvous address.
	Rendezvous string
	// Registration is the registration-file path ("" = none forwarded).
	Registration string
	// Host is the launcher-assigned placement host label ("" = unset).
	Host string
	// Bind is the listener bind host ("" = loopback).
	Bind string
}

// Validate checks the launch context for internal consistency.
func (e Env) Validate() error {
	if e.Size <= 0 {
		return fmt.Errorf("mpirun: world size %d", e.Size)
	}
	if e.Rank < 0 || e.Rank >= e.Size {
		return fmt.Errorf("mpirun: rank %d out of world of %d", e.Rank, e.Size)
	}
	if e.Rendezvous == "" {
		return fmt.Errorf("mpirun: %s not set", EnvRendezvous)
	}
	return nil
}

// Environ renders the context as KEY=VALUE pairs, omitting unset optional
// fields. It is the single place the launcher and the remote agent build a
// worker environment from, so adding a launch variable cannot miss a spawn
// path.
func (e Env) Environ() []string {
	env := []string{
		fmt.Sprintf("%s=%d", EnvRank, e.Rank),
		fmt.Sprintf("%s=%d", EnvSize, e.Size),
		fmt.Sprintf("%s=%s", EnvRendezvous, e.Rendezvous),
	}
	if e.Registration != "" {
		env = append(env, fmt.Sprintf("%s=%s", EnvRegistration, e.Registration))
	}
	if e.Host != "" {
		env = append(env, fmt.Sprintf("%s=%s", EnvHost, e.Host))
	}
	if e.Bind != "" {
		env = append(env, fmt.Sprintf("%s=%s", EnvBind, e.Bind))
	}
	return env
}

// EnvFromOS reads and validates the launch context from the process
// environment.
func EnvFromOS() (Env, error) {
	rank, err := strconv.Atoi(os.Getenv(EnvRank))
	if err != nil {
		return Env{}, fmt.Errorf("mpirun: bad %s: %w", EnvRank, err)
	}
	size, err := strconv.Atoi(os.Getenv(EnvSize))
	if err != nil {
		return Env{}, fmt.Errorf("mpirun: bad %s: %w", EnvSize, err)
	}
	e := Env{
		Rank:         rank,
		Size:         size,
		Rendezvous:   os.Getenv(EnvRendezvous),
		Registration: os.Getenv(EnvRegistration),
		Host:         os.Getenv(EnvHost),
		Bind:         os.Getenv(EnvBind),
	}
	if err := e.Validate(); err != nil {
		return Env{}, err
	}
	return e, nil
}

// Launched reports whether the process was started by mphrun (or an
// equivalent launcher) and should bootstrap a TCP world.
func Launched() bool {
	return os.Getenv(EnvRank) != "" && os.Getenv(EnvSize) != "" && os.Getenv(EnvRendezvous) != ""
}

// Endpoint is one rank's advertised network identity: the routable address
// of its listener and the placement host label it runs on.
type Endpoint struct {
	// Addr is the rank's listener address ("ip:port"), routable from every
	// other host of the job.
	Addr string
	// Host is the placement host label ("" = unknown).
	Host string
}

// noHost is the wire placeholder for an empty host label (the exchange is
// whitespace-delimited, so empty strings need a stand-in).
const noHost = "-"

// ListenAddr maps a bind host to the address a job listener should listen
// on: "" keeps the loopback default, anything else (including wildcards)
// binds that host on an ephemeral port.
func ListenAddr(bind string) string {
	switch bind {
	case "":
		return "127.0.0.1:0"
	case "*":
		return net.JoinHostPort("", "0") // ":0" — all interfaces
	default:
		return net.JoinHostPort(bind, "0")
	}
}

// AdvertiseAddr derives the address peers should dial from the bind host
// and the actual listen address: loopback binds advertise themselves,
// wildcard binds substitute a detected routable IP, and explicit binds
// advertise the bound host.
func AdvertiseAddr(bind string, actual net.Addr) string {
	_, port, err := net.SplitHostPort(actual.String())
	if err != nil {
		return actual.String()
	}
	switch {
	case bind == "":
		return actual.String()
	case isWildcard(bind):
		return net.JoinHostPort(RoutableIP(), port)
	default:
		return net.JoinHostPort(bind, port)
	}
}

// isWildcard reports whether a bind host means "all interfaces".
func isWildcard(bind string) bool {
	switch bind {
	case "*", "0.0.0.0", "::", "[::]":
		return true
	}
	return false
}

// RoutableIP returns this host's primary non-loopback IP, the address other
// hosts of a job should dial. It prefers the source address of the default
// route (no packet is sent), falls back to the first global unicast
// interface address, and degrades to loopback on single-interface machines.
func RoutableIP() string {
	if conn, err := net.Dial("udp", "192.0.2.1:9"); err == nil { // TEST-NET-1: route lookup only
		ip := conn.LocalAddr().(*net.UDPAddr).IP
		conn.Close()
		if ip != nil && !ip.IsLoopback() {
			return ip.String()
		}
	}
	if addrs, err := net.InterfaceAddrs(); err == nil {
		for _, a := range addrs {
			ipn, ok := a.(*net.IPNet)
			if !ok || ipn.IP.IsLoopback() || !ipn.IP.IsGlobalUnicast() {
				continue
			}
			return ipn.IP.String()
		}
	}
	return "127.0.0.1"
}

// Rendezvous is the launcher-side address exchange: it accepts one
// connection per rank, collects (rank, listen address, host) triples, and
// answers each with the complete endpoint book.
//
// Wire protocol, line-oriented:
//
//	worker:   "<rank> <addr> [host]\n"        (host "-" or absent = unknown)
//	launcher: "<addr0> <addr1> ... <addrN-1>\n"
//	          "<host0> <host1> ... <hostN-1>\n"
//
// The first reply line alone is the pre-host protocol, so a worker that only
// reads addresses still interoperates.
type Rendezvous struct {
	ln         net.Listener
	size       int
	advertised string

	closed atomic.Bool

	mu   sync.Mutex
	book []Endpoint // complete endpoint book, set when Serve succeeds
}

// NewRendezvous starts the exchange for a world of the given size on a
// loopback port, the right default for single-host jobs.
func NewRendezvous(size int) (*Rendezvous, error) {
	return NewRendezvousBind("", size)
}

// NewRendezvousBind starts the exchange on the given bind host ("" =
// loopback, wildcard = all interfaces with a detected routable IP
// advertised) so workers on other hosts can reach it.
func NewRendezvousBind(bind string, size int) (*Rendezvous, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpirun: rendezvous for world of %d", size)
	}
	ln, err := net.Listen("tcp", ListenAddr(bind))
	if err != nil {
		return nil, fmt.Errorf("mpirun: rendezvous listen: %w", err)
	}
	return &Rendezvous{ln: ln, size: size, advertised: AdvertiseAddr(bind, ln.Addr())}, nil
}

// Advertised returns the routable address workers should register with. It
// is the single advertised-address accessor; with the default loopback bind
// it equals the listen address.
func (r *Rendezvous) Advertised() string { return r.advertised }

// Close cancels the exchange: a Serve in progress returns
// ErrRendezvousClosed instead of waiting out its timeout. Safe to call
// concurrently with Serve and more than once.
func (r *Rendezvous) Close() {
	if r.closed.CompareAndSwap(false, true) {
		r.ln.Close()
	}
}

// Book returns the completed endpoint book (indexed by world rank), or nil
// if Serve has not finished successfully. The launcher uses the addresses to
// reach surviving ranks when broadcasting an abort, and the hosts for its
// per-host failure report.
func (r *Rendezvous) Book() []Endpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.book == nil {
		return nil
	}
	out := make([]Endpoint, len(r.book))
	copy(out, r.book)
	return out
}

// Serve runs the exchange to completion: it accepts every rank's
// registration, then answers each with the full endpoint book, and closes
// the listener. The timeout bounds the whole exchange.
//
// Registrations are read concurrently and the book is fanned out to all
// registrants in parallel once complete, so the exchange costs one round
// trip for the whole world instead of N sequential ones — a slow or distant
// rank delays only the final fan-out, never the other ranks' reads.
func (r *Rendezvous) Serve(timeout time.Duration) error {
	defer r.ln.Close()
	deadline := time.Now().Add(timeout)

	// registration is one parsed worker hello, or the error that ended it.
	type registration struct {
		rank int
		ep   Endpoint
		conn net.Conn
		err  error
	}
	regCh := make(chan registration, r.size)
	acceptErr := make(chan error, 1)

	// Every accepted connection is tracked so the exchange can be torn down
	// from any exit path while parser goroutines are still in flight.
	var connMu sync.Mutex
	var conns []net.Conn
	done := false
	track := func(c net.Conn) bool {
		connMu.Lock()
		defer connMu.Unlock()
		if done {
			c.Close()
			return false
		}
		conns = append(conns, c)
		return true
	}
	defer func() {
		connMu.Lock()
		done = true
		for _, c := range conns {
			c.Close()
		}
		connMu.Unlock()
	}()

	go func() {
		for i := 0; i < r.size; i++ {
			if l, ok := r.ln.(*net.TCPListener); ok {
				if err := l.SetDeadline(deadline); err != nil {
					acceptErr <- err
					return
				}
			}
			conn, err := r.ln.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			if !track(conn) {
				return
			}
			go func(conn net.Conn) {
				reg := registration{conn: conn}
				defer func() { regCh <- reg }()
				if err := conn.SetDeadline(deadline); err != nil {
					reg.err = err
					return
				}
				line, err := bufio.NewReader(conn).ReadString('\n')
				if err != nil {
					reg.err = fmt.Errorf("mpirun: rendezvous read: %w", err)
					return
				}
				fields := strings.Fields(line)
				if len(fields) != 2 && len(fields) != 3 {
					reg.err = fmt.Errorf("mpirun: malformed registration %q", strings.TrimSpace(line))
					return
				}
				rank, err := strconv.Atoi(fields[0])
				if err != nil || rank < 0 || rank >= r.size {
					reg.err = fmt.Errorf("mpirun: registration with bad rank %q", fields[0])
					return
				}
				reg.rank = rank
				reg.ep = Endpoint{Addr: fields[1]}
				if len(fields) == 3 && fields[2] != noHost {
					reg.ep.Host = fields[2]
				}
			}(conn)
		}
	}()

	book := make([]Endpoint, r.size)
	registered := make([]net.Conn, r.size)
	for got := 0; got < r.size; {
		select {
		case err := <-acceptErr:
			if r.closed.Load() {
				return ErrRendezvousClosed
			}
			return fmt.Errorf("mpirun: rendezvous accept (%d/%d registered): %w", got, r.size, err)
		case reg := <-regCh:
			if reg.err != nil {
				return reg.err
			}
			if registered[reg.rank] != nil {
				return fmt.Errorf("mpirun: rank %d registered twice", reg.rank)
			}
			book[reg.rank] = reg.ep
			registered[reg.rank] = reg.conn
			got++
		}
	}

	reply := []byte(bookReply(book))
	replyErrs := make([]error, r.size)
	var wg sync.WaitGroup
	for rank, conn := range registered {
		wg.Add(1)
		go func(rank int, conn net.Conn) {
			defer wg.Done()
			if _, err := conn.Write(reply); err != nil {
				replyErrs[rank] = fmt.Errorf("mpirun: rendezvous reply to rank %d: %w", rank, err)
			}
		}(rank, conn)
	}
	wg.Wait()
	for _, err := range replyErrs {
		if err != nil {
			return err
		}
	}
	r.mu.Lock()
	r.book = book
	r.mu.Unlock()
	return nil
}

// bookReply renders the two-line endpoint book reply.
func bookReply(book []Endpoint) string {
	addrs := make([]string, len(book))
	hosts := make([]string, len(book))
	for i, ep := range book {
		addrs[i] = ep.Addr
		if ep.Host == "" {
			hosts[i] = noHost
		} else {
			hosts[i] = ep.Host
		}
	}
	return strings.Join(addrs, " ") + "\n" + strings.Join(hosts, " ") + "\n"
}

// RegisterEndpoint is the worker side of the exchange: it reports this
// rank's advertised endpoint to the rendezvous and returns the full
// endpoint book (indexed by rank).
func RegisterEndpoint(rendezvous string, rank int, ep Endpoint, timeout time.Duration) ([]Endpoint, error) {
	conn, err := net.DialTimeout("tcp", rendezvous, timeout)
	if err != nil {
		return nil, fmt.Errorf("mpirun: dial rendezvous %s: %w", rendezvous, err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	host := ep.Host
	if host == "" {
		host = noHost
	}
	if _, err := fmt.Fprintf(conn, "%d %s %s\n", rank, ep.Addr, host); err != nil {
		return nil, fmt.Errorf("mpirun: register rank %d: %w", rank, err)
	}
	rd := bufio.NewReader(conn)
	addrLine, err := rd.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("mpirun: read address book: %w", err)
	}
	hostLine, err := rd.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("mpirun: read host book: %w", err)
	}
	addrs := strings.Fields(addrLine)
	hosts := strings.Fields(hostLine)
	if len(hosts) != len(addrs) {
		return nil, fmt.Errorf("mpirun: host book has %d entries, address book %d", len(hosts), len(addrs))
	}
	if rank >= len(addrs) {
		return nil, fmt.Errorf("mpirun: address book has %d entries, rank is %d", len(addrs), rank)
	}
	book := make([]Endpoint, len(addrs))
	for i := range addrs {
		book[i] = Endpoint{Addr: addrs[i]}
		if hosts[i] != noHost {
			book[i].Host = hosts[i]
		}
	}
	return book, nil
}
