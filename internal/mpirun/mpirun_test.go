package mpirun

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

func TestEnvFromOS(t *testing.T) {
	t.Setenv(EnvRank, "3")
	t.Setenv(EnvSize, "8")
	t.Setenv(EnvRendezvous, "127.0.0.1:9999")
	t.Setenv(EnvRegistration, "/tmp/map.in")
	e, err := EnvFromOS()
	if err != nil {
		t.Fatal(err)
	}
	if e.Rank != 3 || e.Size != 8 || e.Rendezvous != "127.0.0.1:9999" || e.Registration != "/tmp/map.in" {
		t.Fatalf("got %+v", e)
	}
	if !Launched() {
		t.Fatal("Launched() false with full env")
	}
}

func TestEnvFromOSErrors(t *testing.T) {
	cases := []struct {
		name             string
		rank, size, rdzv string
		wantSub          string
	}{
		{"bad rank", "x", "4", "a:1", EnvRank},
		{"bad size", "0", "y", "a:1", EnvSize},
		{"no rendezvous", "0", "4", "", EnvRendezvous},
		{"rank too big", "4", "4", "a:1", "out of world"},
		{"negative rank", "-1", "4", "a:1", "out of world"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			t.Setenv(EnvRank, tc.rank)
			t.Setenv(EnvSize, tc.size)
			t.Setenv(EnvRendezvous, tc.rdzv)
			_, err := EnvFromOS()
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q missing %q", err, tc.wantSub)
			}
		})
	}
}

func TestLaunchedFalseWithoutEnv(t *testing.T) {
	t.Setenv(EnvRank, "")
	t.Setenv(EnvSize, "")
	t.Setenv(EnvRendezvous, "")
	if Launched() {
		t.Fatal("Launched() true with empty env")
	}
}

func TestNewRendezvousValidation(t *testing.T) {
	if _, err := NewRendezvous(0); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewRendezvous(-1); err == nil {
		t.Error("negative size accepted")
	}
}

func TestRendezvousExchange(t *testing.T) {
	const n = 4
	rv, err := NewRendezvous(n)
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- rv.Serve(10 * time.Second) }()

	books := make(chan []Endpoint, n)
	errs := make(chan error, n)
	for r := 0; r < n; r++ {
		go func(rank int) {
			book, err := RegisterEndpoint(rv.Advertised(), rank, Endpoint{Addr: addrFor(rank)}, 10*time.Second)
			if err != nil {
				errs <- err
				return
			}
			books <- book
		}(r)
	}
	for i := 0; i < n; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case book := <-books:
			if len(book) != n {
				t.Fatalf("book %v", book)
			}
			for r := 0; r < n; r++ {
				if book[r].Addr != addrFor(r) {
					t.Fatalf("book[%d] = %q", r, book[r].Addr)
				}
			}
		}
	}
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
}

func addrFor(rank int) string {
	return "10.0.0.1:" + string(rune('a'+rank)) // any distinct token works: addresses are opaque strings
}

func TestRegisterDialFailure(t *testing.T) {
	if _, err := RegisterEndpoint("127.0.0.1:1", 0, Endpoint{Addr: "x:1"}, 200*time.Millisecond); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestRendezvousRejectsMalformedRegistration(t *testing.T) {
	rv, err := NewRendezvous(1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- rv.Serve(5 * time.Second) }()
	// A client that sends garbage instead of "rank addr".
	conn, err := dial(rv.Advertised())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("garbage line\n")); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("malformed registration accepted")
	}
}

// dial is a tiny helper for protocol-level tests.
func dial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

// TestRendezvousClose is the regression test for the launcher leak: Close
// must make a Serve blocked in Accept return ErrRendezvousClosed promptly
// instead of waiting out its full timeout.
func TestRendezvousClose(t *testing.T) {
	rv, err := NewRendezvous(2)
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- rv.Serve(60 * time.Second) }()

	time.Sleep(20 * time.Millisecond) // let Serve block in Accept
	start := time.Now()
	rv.Close()
	rv.Close() // idempotent
	select {
	case err := <-serveErr:
		if !errors.Is(err, ErrRendezvousClosed) {
			t.Fatalf("Serve returned %v, want ErrRendezvousClosed", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("Serve took %v to notice Close", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not cancel Serve")
	}
}

// TestRendezvousBook checks the endpoint-book accessor the launcher's abort
// broadcast relies on: nil before the exchange completes, the full book in
// rank order afterwards, and safely copied.
func TestRendezvousBook(t *testing.T) {
	const n = 2
	rv, err := NewRendezvous(n)
	if err != nil {
		t.Fatal(err)
	}
	if rv.Book() != nil {
		t.Error("Book non-nil before Serve completed")
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- rv.Serve(10 * time.Second) }()
	for r := 0; r < n; r++ {
		go RegisterEndpoint(rv.Advertised(), r, Endpoint{Addr: addrFor(r)}, 10*time.Second)
	}
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
	book := rv.Book()
	if len(book) != n {
		t.Fatalf("Book = %v", book)
	}
	for r := 0; r < n; r++ {
		if book[r].Addr != addrFor(r) {
			t.Errorf("book[%d].Addr = %q, want %q", r, book[r].Addr, addrFor(r))
		}
	}
	book[0].Addr = "mutated"
	if rv.Book()[0].Addr == "mutated" {
		t.Error("Book returned the internal slice, not a copy")
	}
}
