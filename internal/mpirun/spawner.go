package mpirun

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"
)

// RankExit is one reaped rank of a spawned block: its world rank and the
// error its process exited with (nil = clean exit).
type RankExit struct {
	// Rank is the world rank that exited.
	Rank int
	// Err is the exit error (nil = exit status 0).
	Err error
}

// Handle supervises the ranks of one spawned host block. Implementations
// must deliver exactly one RankExit per rank on Exits and close the channel
// once the last rank has been reaped (or declared lost — a daemon connection
// dying mid-job counts every unresolved rank as failed).
type Handle interface {
	// Exits delivers one RankExit per rank of the block, in reap order, and
	// is closed after the last one.
	Exits() <-chan RankExit
	// Kill terminates a rank's process group wherever it runs; rank < 0
	// kills every rank of the block. Idempotent and best-effort — a rank
	// that already exited is skipped.
	Kill(rank int)
	// Wait blocks until every rank has been reaped and its relayed output
	// drained.
	Wait()
}

// Block is the host-local slice of a launch handed to a Spawner: the ranks
// placed on one host plus the job-wide launch context they need. The same
// context travels to every host; only Procs and the host differ.
type Block struct {
	// Procs are the ranks placed on the host, in world order.
	Procs []Proc
	// Size is the world size.
	Size int
	// Rendezvous is the launcher's advertised rendezvous address.
	Rendezvous string
	// Registration is the launcher-local registration file path ("" = none);
	// only the local spawner can use it directly.
	Registration string
	// Regdata is the base64 registration-file contents shipped by value for
	// spawners that cross a host boundary.
	Regdata string
	// Bind is the listener bind host for every rank ("" = loopback).
	Bind string
	// ExtraEnv entries (KEY=VALUE) are appended to every rank's environment.
	ExtraEnv []string
	// Passthrough is the launcher's filtered MPH_* environment, forwarded so
	// tuning knobs and fault injections reach ranks on every host.
	Passthrough []string
	// Stdout and Stderr receive the ranks' relayed output (nil = the
	// launcher's own os.Stdout/os.Stderr).
	Stdout, Stderr io.Writer
}

// stdout returns the block's stdout relay destination.
func (b *Block) stdout() io.Writer {
	if b.Stdout != nil {
		return b.Stdout
	}
	return os.Stdout
}

// stderr returns the block's stderr relay destination.
func (b *Block) stderr() io.Writer {
	if b.Stderr != nil {
		return b.Stderr
	}
	return os.Stderr
}

// rankPrefix renders the output-relay prefix of one rank.
func rankPrefix(p Proc, host string) string {
	if host == "" {
		return fmt.Sprintf("[exe%d rank%d] ", p.Exe, p.Rank)
	}
	return fmt.Sprintf("[exe%d rank%d@%s] ", p.Exe, p.Rank, host)
}

// Spawner starts the host-local rank blocks of a launch. It is the typed
// replacement for the stringly Backend switches the launcher used to thread:
// each backend is now a value resolved once from the CLI (or constructed
// directly by embedding callers), and the launcher calls Spawn per host
// without knowing how ranks come to life there.
type Spawner interface {
	// Name is the CLI spelling of the spawner ("local", "exec", "ssh",
	// "daemon"), used in launcher banners and error reports.
	Name() string
	// WantsRoutable reports whether ranks may run on other machines, in
	// which case the rendezvous and every rank's listener must bind routable
	// interfaces instead of loopback.
	WantsRoutable() bool
	// Spawn starts every rank of the block on the given placement host ("" =
	// the launcher's host) and returns the handle supervising them. On error
	// nothing of the block survives.
	Spawn(ctx context.Context, host string, block Block) (Handle, error)
}

// HostProber is implemented by spawners that can cheaply check a host is
// reachable and ready before the launcher commits to the full spawn. The
// launcher probes every placement host concurrently before phase 1 and fails
// fast with a per-host report instead of burning the rendezvous timeout.
type HostProber interface {
	// ProbeHost checks one placement host; a nil return means the host can
	// spawn ranks right now.
	ProbeHost(ctx context.Context, host string) error
}

// SpawnerOptions carries the CLI-level knobs NewSpawner maps onto the
// spawner constructors.
type SpawnerOptions struct {
	// AgentPath is the mphrun binary run as the remote agent ("" = this
	// executable).
	AgentPath string
	// SSHOptions are extra ssh arguments for the ssh spawner.
	SSHOptions []string
	// DaemonPort is the mphd control port on every host (0 =
	// DefaultDaemonPort).
	DaemonPort int
	// DaemonAddr, when set, sends every block to this one daemon address
	// regardless of host label (single-machine testing of the daemon path).
	DaemonAddr string
}

// NewSpawner is the conversion helper from the deprecated stringly Backend
// constants to a Spawner value. New code should call the constructors
// directly.
func NewSpawner(b Backend, opts SpawnerOptions) (Spawner, error) {
	switch b {
	case BackendLocal, "":
		return NewLocalSpawner(), nil
	case BackendExec:
		return NewExecSpawner(opts.AgentPath), nil
	case BackendSSH:
		return NewSSHSpawner(opts.AgentPath, opts.SSHOptions), nil
	case BackendDaemon:
		return NewDaemonSpawner(opts.DaemonAddr, opts.DaemonPort), nil
	}
	return nil, fmt.Errorf("unknown backend %q (want local, exec, ssh, or daemon)", b)
}

// dedupEnv collapses duplicate KEY=VALUE entries, keeping each key's last
// value at its first position. The Go runtime (and libc getenv) honour the
// FIRST occurrence of a duplicated key, so a per-rank override appended
// after os.Environ() — GOMAXPROCS from the slot-share policy in particular —
// would silently lose to the inherited environment without this.
func dedupEnv(env []string) []string {
	out := make([]string, 0, len(env))
	idx := make(map[string]int, len(env))
	for _, kv := range env {
		key, _, ok := strings.Cut(kv, "=")
		if !ok {
			out = append(out, kv)
			continue
		}
		if i, seen := idx[key]; seen {
			out[i] = kv
			continue
		}
		idx[key] = len(out)
		out = append(out, kv)
	}
	return out
}

// LocalSpawner runs every rank directly on the launcher's host — the classic
// single-host mode. Host-placed ranks are rejected by LaunchSpec.Validate.
type LocalSpawner struct{}

// NewLocalSpawner returns the direct-spawn backend.
func NewLocalSpawner() *LocalSpawner { return &LocalSpawner{} }

// Name implements Spawner.
func (*LocalSpawner) Name() string { return "local" }

// WantsRoutable implements Spawner: everything stays on loopback.
func (*LocalSpawner) WantsRoutable() bool { return false }

// Spawn implements Spawner by exec'ing each rank's command with the launch
// context in its environment.
func (s *LocalSpawner) Spawn(ctx context.Context, host string, block Block) (Handle, error) {
	return spawnProcs(host, block, func(p Proc) (*exec.Cmd, bool, error) {
		cmd := exec.Command(p.Argv[0], p.Argv[1:]...)
		env := Env{
			Rank:         p.Rank,
			Size:         block.Size,
			Rendezvous:   block.Rendezvous,
			Registration: block.Registration,
			Host:         host,
			Bind:         block.Bind,
		}
		cmd.Env = dedupEnv(append(append(append(os.Environ(),
			env.Environ()...), block.ExtraEnv...), p.Env...))
		return cmd, false, nil
	})
}

// ExecSpawner runs every rank through the agent command ("mphrun
// agent-exec") on the launcher's own host, treating host assignments as
// labels only. It exercises the full remote path — agent protocol, env
// forwarding, host topology, remote kill — without an ssh daemon, which is
// what CI runs.
type ExecSpawner struct {
	// AgentPath is the agent binary ("" = this executable).
	AgentPath string
}

// NewExecSpawner returns the local-agent backend.
func NewExecSpawner(agentPath string) *ExecSpawner {
	return &ExecSpawner{AgentPath: agentPath}
}

// Name implements Spawner.
func (*ExecSpawner) Name() string { return "exec" }

// WantsRoutable implements Spawner: every process shares the launcher's
// loopback.
func (*ExecSpawner) WantsRoutable() bool { return false }

// Spawn implements Spawner by running one local agent process per rank.
func (s *ExecSpawner) Spawn(ctx context.Context, host string, block Block) (Handle, error) {
	agent, err := resolveAgentPath(s.AgentPath)
	if err != nil {
		return nil, err
	}
	return spawnProcs(host, block, func(p Proc) (*exec.Cmd, bool, error) {
		return exec.Command(agent, agentArgs(host, block, p)...), true, nil
	})
}

// SSHSpawner runs each rank by executing the agent command on its assigned
// host via ssh. The agent binary must exist at the same path on every remote
// host.
type SSHSpawner struct {
	// AgentPath is the agent binary ("" = this executable's path, assumed
	// shared with the remote hosts).
	AgentPath string
	// Options are extra ssh arguments inserted before the host (after the
	// built-in BatchMode options).
	Options []string
	// Command is the ssh client binary ("" = "ssh"). Tests substitute a stub
	// that runs the remote command locally.
	Command string
}

// NewSSHSpawner returns the ssh backend.
func NewSSHSpawner(agentPath string, options []string) *SSHSpawner {
	return &SSHSpawner{AgentPath: agentPath, Options: options}
}

// Name implements Spawner.
func (*SSHSpawner) Name() string { return "ssh" }

// WantsRoutable implements Spawner: remote ranks must be able to dial back,
// so loopback listeners would strand them.
func (*SSHSpawner) WantsRoutable() bool { return true }

// ssh returns the ssh client binary to run.
func (s *SSHSpawner) ssh() string {
	if s.Command != "" {
		return s.Command
	}
	return "ssh"
}

// sshArgs builds the argument prefix shared by spawn and probe commands:
// batch-mode options, the caller's extra options, then the host.
func (s *SSHSpawner) sshArgs(host string) []string {
	args := []string{"-o", "BatchMode=yes", "-o", "StrictHostKeyChecking=accept-new"}
	args = append(args, s.Options...)
	return append(args, host)
}

// Spawn implements Spawner by running the agent command on each rank's host
// via ssh; unpinned ranks run through the local agent so supervision is
// uniform.
func (s *SSHSpawner) Spawn(ctx context.Context, host string, block Block) (Handle, error) {
	agent, err := resolveAgentPath(s.AgentPath)
	if err != nil {
		return nil, err
	}
	return spawnProcs(host, block, func(p Proc) (*exec.Cmd, bool, error) {
		if host == "" {
			return exec.Command(agent, agentArgs(host, block, p)...), true, nil
		}
		remote := shellJoin(append([]string{agent}, agentArgs(host, block, p)...))
		return exec.Command(s.ssh(), append(s.sshArgs(host), remote)...), true, nil
	})
}

// sshProbeTimeout bounds one host's pre-launch `ssh host true` check.
const sshProbeTimeout = 10 * time.Second

// ProbeHost implements HostProber with `ssh -o BatchMode=yes HOST true`: it
// proves name resolution, reachability, and non-interactive authentication
// in one round trip, which is everything a spawn needs.
func (s *SSHSpawner) ProbeHost(ctx context.Context, host string) error {
	if host == "" {
		return nil // unpinned ranks run on the launcher's own host
	}
	ctx, cancel := context.WithTimeout(ctx, sshProbeTimeout)
	defer cancel()
	out, err := exec.CommandContext(ctx, s.ssh(), append(s.sshArgs(host), "true")...).CombinedOutput()
	if err != nil {
		msg := strings.TrimSpace(string(out))
		if msg != "" {
			return fmt.Errorf("%w (%s)", err, msg)
		}
		return err
	}
	return nil
}

// resolveAgentPath defaults the agent binary to this executable.
func resolveAgentPath(path string) (string, error) {
	if path != "" {
		return path, nil
	}
	self, err := os.Executable()
	if err != nil {
		return "", fmt.Errorf("mpirun: resolve agent path: %w", err)
	}
	return self, nil
}

// agentArgs builds the agent-exec argument list for one rank: the launch
// context as flags, the forwarded environment as repeated -env flags, and
// the rank's command after "--".
func agentArgs(host string, block Block, p Proc) []string {
	args := []string{
		"agent-exec",
		"-rank", strconv.Itoa(p.Rank),
		"-size", strconv.Itoa(block.Size),
		"-rendezvous", block.Rendezvous,
	}
	if host != "" {
		args = append(args, "-host", host)
	}
	if block.Bind != "" {
		args = append(args, "-bind", block.Bind)
	}
	if block.Regdata != "" {
		args = append(args, "-regdata", block.Regdata)
	}
	for _, kv := range block.Passthrough {
		args = append(args, "-env", kv)
	}
	for _, kv := range block.ExtraEnv {
		args = append(args, "-env", kv)
	}
	for _, kv := range p.Env {
		args = append(args, "-env", kv)
	}
	args = append(args, "--")
	return append(args, p.Argv...)
}

// procChild is one locally started process of a block: the rank itself, its
// agent, or its ssh client.
type procChild struct {
	cmd  *exec.Cmd
	rank int

	// agentIn is the agent's stdin (nil for direct spawns): writing "kill\n"
	// — or just closing it — makes the agent SIGKILL the rank's process
	// group wherever it runs.
	agentIn io.WriteCloser
	// done is closed once the child has been reaped; it cancels the kill
	// backstop.
	done chan struct{}

	killOnce sync.Once
}

// kill terminates the rank's process group. Direct children are killed
// immediately; agent-backed children are asked through the agent's stdin
// (which kills the remote process group), with a local process-tree kill
// after agentKillBackstop in case the agent itself is gone or wedged.
func (c *procChild) kill() {
	c.killOnce.Do(func() {
		if c.agentIn == nil {
			killTree(c.cmd)
			return
		}
		// Best effort: a dead agent just means the write fails and the
		// backstop fires.
		_, _ = io.WriteString(c.agentIn, "kill\n")
		c.agentIn.Close()
		go func() {
			select {
			case <-c.done:
			case <-time.After(agentKillBackstop):
				killTree(c.cmd)
			}
		}()
	})
}

// procHandle supervises the per-process children of one block for the
// local, exec, and ssh spawners.
type procHandle struct {
	exits    chan RankExit
	children map[int]*procChild
	reapWG   sync.WaitGroup
	outWG    sync.WaitGroup
}

// spawnProcs starts one OS process per rank of the block — assembled by
// command, which also reports whether the process is an agent with a stdin
// kill channel — wiring output relays and process-group isolation, and
// begins reaping. On any start error the already-started ranks are killed
// and nothing survives.
func spawnProcs(host string, block Block, command func(p Proc) (*exec.Cmd, bool, error)) (*procHandle, error) {
	h := &procHandle{
		exits:    make(chan RankExit, len(block.Procs)),
		children: make(map[int]*procChild, len(block.Procs)),
	}
	abort := func(err error) (*procHandle, error) {
		h.Kill(-1)
		return nil, err
	}
	for _, p := range block.Procs {
		cmd, isAgent, err := command(p)
		if err != nil {
			return abort(err)
		}
		c := &procChild{cmd: cmd, rank: p.Rank, done: make(chan struct{})}
		if isAgent {
			stdin, err := cmd.StdinPipe()
			if err != nil {
				return abort(err)
			}
			c.agentIn = stdin
		}
		prefix := rankPrefix(p, host)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return abort(err)
		}
		stderr, err := cmd.StderrPipe()
		if err != nil {
			return abort(err)
		}
		h.outWG.Add(2)
		go relay(block.stdout(), stdout, prefix, &h.outWG)
		go relay(block.stderr(), stderr, prefix, &h.outWG)
		setProcGroup(cmd)
		if err := cmd.Start(); err != nil {
			return abort(fmt.Errorf("start %q (rank %d): %w", strings.Join(p.Argv, " "), p.Rank, err))
		}
		h.children[p.Rank] = c
	}
	// Reap each child on its own goroutine so a process that dies before the
	// rendezvous completes surfaces immediately instead of leaving the
	// launcher waiting out the timeout.
	for _, c := range h.children {
		h.reapWG.Add(1)
		go func(c *procChild) {
			defer h.reapWG.Done()
			err := c.cmd.Wait()
			close(c.done)
			h.exits <- RankExit{Rank: c.rank, Err: err}
		}(c)
	}
	go func() {
		h.reapWG.Wait()
		close(h.exits)
	}()
	return h, nil
}

// Exits implements Handle.
func (h *procHandle) Exits() <-chan RankExit { return h.exits }

// Kill implements Handle.
func (h *procHandle) Kill(rank int) {
	if rank < 0 {
		for _, c := range h.children {
			c.kill()
		}
		return
	}
	if c, ok := h.children[rank]; ok {
		c.kill()
	}
}

// Wait implements Handle.
func (h *procHandle) Wait() {
	h.reapWG.Wait()
	h.outWG.Wait()
}
