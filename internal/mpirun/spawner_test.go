package mpirun

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestNewSpawnerConversion pins the deprecated-Backend conversion helper:
// every string constant maps to its typed spawner, "" defaults to local,
// options reach the constructors, and unknown names error.
func TestNewSpawnerConversion(t *testing.T) {
	cases := []struct {
		backend Backend
		want    string
	}{
		{"", "local"},
		{BackendLocal, "local"},
		{BackendExec, "exec"},
		{BackendSSH, "ssh"},
		{BackendDaemon, "daemon"},
	}
	for _, c := range cases {
		sp, err := NewSpawner(c.backend, SpawnerOptions{})
		if err != nil {
			t.Errorf("NewSpawner(%q): %v", c.backend, err)
			continue
		}
		if sp.Name() != c.want {
			t.Errorf("NewSpawner(%q).Name() = %q, want %q", c.backend, sp.Name(), c.want)
		}
	}
	if _, err := NewSpawner("rsh", SpawnerOptions{}); err == nil {
		t.Error("unknown backend accepted")
	}
	sp, err := NewSpawner(BackendSSH, SpawnerOptions{AgentPath: "/opt/mphrun", SSHOptions: []string{"-p", "2222"}})
	if err != nil {
		t.Fatal(err)
	}
	ssh := sp.(*SSHSpawner)
	if ssh.AgentPath != "/opt/mphrun" || !reflect.DeepEqual(ssh.Options, []string{"-p", "2222"}) {
		t.Errorf("ssh options not forwarded: %+v", ssh)
	}
	sp, err = NewSpawner(BackendDaemon, SpawnerOptions{DaemonAddr: "127.0.0.1:9", DaemonPort: 7777})
	if err != nil {
		t.Fatal(err)
	}
	dm := sp.(*DaemonSpawner)
	if dm.Addr != "127.0.0.1:9" || dm.Port != 7777 {
		t.Errorf("daemon options not forwarded: %+v", dm)
	}
}

// TestDedupEnv pins the duplicate-key rule the GOMAXPROCS injection relies
// on: the Go runtime honours the FIRST occurrence of a key, so dedupEnv
// must collapse duplicates to the last value while keeping positions.
func TestDedupEnv(t *testing.T) {
	got := dedupEnv([]string{"A=1", "B=2", "A=3", "C=4", "B=5"})
	want := []string{"A=3", "B=5", "C=4"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dedupEnv = %v, want %v", got, want)
	}
	// Non-KEY=VALUE entries pass through untouched.
	got = dedupEnv([]string{"weird", "A=1"})
	if !reflect.DeepEqual(got, []string{"weird", "A=1"}) {
		t.Errorf("dedupEnv mangled odd entries: %v", got)
	}
}

// TestSlotShareInjection covers the slot-aware GOMAXPROCS policy at the
// spec level: even splits, oversubscription floored at one, unknown hosts
// untouched.
func TestSlotShareInjection(t *testing.T) {
	entries := []Entry{{Nprocs: 6, Argv: []string{"w"}}}
	hosts := []HostSlot{{Name: "big", Slots: 8}, {Name: "small", Slots: 2}}
	// Block placement: ranks 0-3 exhaust big's... 8 slots hold ranks 0-5?
	// No: big has 8 slots, so all 6 ranks land on big. Use cyclic to spread.
	spec, err := NewLaunchSpec(entries, hosts, PlaceCyclic)
	if err != nil {
		t.Fatal(err)
	}
	perHost := map[string]int{}
	for _, p := range spec.Procs {
		perHost[p.Host]++
	}
	for _, p := range spec.Procs {
		want := fmt.Sprintf("GOMAXPROCS=%d", max(1, slotOf(hosts, p.Host)/perHost[p.Host]))
		found := false
		for _, kv := range p.Env {
			if kv == want {
				found = true
			}
		}
		if !found {
			t.Errorf("rank %d on %s env %v missing %s", p.Rank, p.Host, p.Env, want)
		}
	}

	// Oversubscription: 4 ranks on a single-slot host still get at least 1.
	over, err := NewLaunchSpec([]Entry{{Nprocs: 4, Argv: []string{"w"}}},
		[]HostSlot{{Name: "tiny", Slots: 1}}, PlaceBlock)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range over.Procs {
		if !contains(p.Env, "GOMAXPROCS=1") {
			t.Errorf("oversubscribed rank %d env %v, want GOMAXPROCS=1", p.Rank, p.Env)
		}
	}

	// No hostfile: nothing injected.
	plain, err := NewLaunchSpec([]Entry{{Nprocs: 2, Argv: []string{"w"}}}, nil, PlaceBlock)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plain.Procs {
		for _, kv := range p.Env {
			if strings.HasPrefix(kv, "GOMAXPROCS=") {
				t.Errorf("rank %d got %s without a hostfile", p.Rank, kv)
			}
		}
	}
}

// slotOf looks up a host's slot count.
func slotOf(hosts []HostSlot, name string) int {
	for _, h := range hosts {
		if h.Name == name {
			return h.Slots
		}
	}
	return 0
}

// contains reports whether the env slice holds the exact entry.
func contains(env []string, kv string) bool {
	for _, e := range env {
		if e == kv {
			return true
		}
	}
	return false
}

// TestSlotShareReachesChild runs the injected share end to end through a
// real spawn: the child must observe the slot share even though the
// inherited environment may already carry a GOMAXPROCS (Go keeps the first
// occurrence of a duplicated key — the bug dedupEnv exists for).
func TestSlotShareReachesChild(t *testing.T) {
	t.Setenv("GOMAXPROCS", "99") // the launcher's own value must lose
	spec, err := NewLaunchSpec(
		[]Entry{{Nprocs: 1, Argv: []string{"/bin/sh", "-c", `test "$GOMAXPROCS" = 2`}}},
		[]HostSlot{{Name: "nodeA", Slots: 2}}, PlaceBlock)
	if err != nil {
		t.Fatal(err)
	}
	block := Block{Procs: spec.Procs, Size: 1}
	h, err := NewLocalSpawner().Spawn(context.Background(), "", block)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := <-h.Exits()
	if !ok {
		t.Fatal("no exit delivered")
	}
	h.Wait()
	if e.Err != nil {
		t.Fatalf("child saw the wrong GOMAXPROCS: %v", e.Err)
	}
}

// TestRendezvousConcurrentRegistration pins the book fan-out rework: a rank
// that connects first but registers last must not serialize the exchange —
// the other ranks' registrations are read while it stalls, and everyone
// still gets the complete book.
func TestRendezvousConcurrentRegistration(t *testing.T) {
	const n = 4
	rv, err := NewRendezvous(n)
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- rv.Serve(10 * time.Second) }()

	// The stall: connect immediately, say nothing yet. Under the old
	// sequential accept→read loop this blocked every later rank.
	stall, err := dial(rv.Advertised())
	if err != nil {
		t.Fatal(err)
	}
	defer stall.Close()

	books := make(chan []Endpoint, n)
	errs := make(chan error, n)
	register := func(rank int) {
		book, err := RegisterEndpoint(rv.Advertised(), rank, Endpoint{Addr: addrFor(rank)}, 10*time.Second)
		if err != nil {
			errs <- err
			return
		}
		books <- book
	}
	for r := 1; r < n; r++ {
		go register(r)
	}
	time.Sleep(300 * time.Millisecond) // the eager ranks' lines are in flight
	// Now the stalled connection finally registers rank 0.
	if _, err := fmt.Fprintf(stall, "0 %s -\n", addrFor(0)); err != nil {
		t.Fatal(err)
	}
	go func() {
		// Read rank 0's reply on the stalled conn so its Write path completes.
		buf := make([]byte, 4096)
		stall.Read(buf)
		books <- nil // placeholder: rank 0's book arrived on the raw conn
	}()

	received := 0
	timeout := time.After(10 * time.Second)
	for received < n {
		select {
		case err := <-errs:
			t.Fatal(err)
		case book := <-books:
			if book != nil {
				for r := 0; r < n; r++ {
					if book[r].Addr != addrFor(r) {
						t.Fatalf("book[%d] = %q", r, book[r].Addr)
					}
				}
			}
			received++
		case <-timeout:
			t.Fatalf("exchange stalled: %d of %d books delivered", received, n)
		}
	}
	if err := <-serveErr; err != nil {
		t.Fatal(err)
	}
}
