package mpirun

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Entry is one parsed component of an MPMD spec: an executable, its
// processor count, and an optional explicit host pin ("host=NAME" between
// the count and the command).
type Entry struct {
	// Nprocs is the number of world ranks this executable owns.
	Nprocs int
	// Host pins every rank of the entry to one host ("" = policy-placed).
	Host string
	// Argv is the command and its arguments.
	Argv []string
	// Line is the cmdfile line the entry came from (0 for colon specs).
	Line int
}

// parseEntryFields turns the token list of one spec segment —
// "nprocs [host=NAME] command [args...]" — into an Entry.
func parseEntryFields(fields []string, line int) (Entry, error) {
	joined := strings.Join(fields, " ")
	if len(fields) < 2 {
		return Entry{}, fmt.Errorf("segment %q: expected \"nprocs [host=NAME] command [args...]\"", joined)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n <= 0 {
		return Entry{}, fmt.Errorf("segment %q: bad processor count %q", joined, fields[0])
	}
	e := Entry{Nprocs: n, Line: line}
	rest := fields[1:]
	if strings.HasPrefix(rest[0], "host=") {
		e.Host = strings.TrimPrefix(rest[0], "host=")
		if e.Host == "" {
			return Entry{}, fmt.Errorf("segment %q: empty host= pin", joined)
		}
		rest = rest[1:]
	}
	if len(rest) == 0 {
		return Entry{}, fmt.Errorf("segment %q: no command", joined)
	}
	e.Argv = append([]string(nil), rest...)
	return e, nil
}

// ParseColonSpec reads the mpirun-style inline MPMD spec: colon-separated
// segments of "nprocs [host=NAME] command [args...]" (the SGI/Compaq launch
// idiom the paper mentions alongside the IBM cmdfile, §6). It returns the
// entries and the total rank count.
func ParseColonSpec(args []string) ([]Entry, int, error) {
	var entries []Entry
	total := 0
	seg := []string{}
	flush := func() error {
		if len(seg) == 0 {
			return fmt.Errorf("empty segment in colon-separated command line")
		}
		e, err := parseEntryFields(seg, 0)
		if err != nil {
			return err
		}
		entries = append(entries, e)
		total += e.Nprocs
		seg = seg[:0]
		return nil
	}
	for _, a := range args {
		if a == ":" {
			if err := flush(); err != nil {
				return nil, 0, err
			}
			continue
		}
		seg = append(seg, a)
	}
	if err := flush(); err != nil {
		return nil, 0, err
	}
	return entries, total, nil
}

// ParseCmdfile reads the MPMD command file: one "nprocs [host=NAME] command
// [args...]" entry per line, '#' comments, blank lines ignored.
func ParseCmdfile(path string) ([]Entry, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()

	var entries []Entry
	total := 0
	sc := bufio.NewScanner(f)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Text()
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		e, err := parseEntryFields(fields, lineNo)
		if err != nil {
			return nil, 0, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		entries = append(entries, e)
		total += e.Nprocs
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	if len(entries) == 0 {
		return nil, 0, fmt.Errorf("%s: no executables", path)
	}
	return entries, total, nil
}

// HostSlot is one host of a hostfile: a name and the number of ranks the
// placement policies schedule onto it before moving on (its "slots").
type HostSlot struct {
	// Name is the host name or address ssh reaches it by; under the exec
	// backend it is only a label.
	Name string
	// Slots is the rank capacity used by the placement policies (>= 1).
	Slots int
}

// ParseHostfile reads a hostfile: one "host [slots=N]" entry per line, '#'
// comments and blank lines ignored, default one slot per host.
//
//	# cluster nodes
//	node-a slots=2
//	node-b            # one slot
func ParseHostfile(path string) ([]HostSlot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var hosts []HostSlot
	seen := make(map[string]bool)
	sc := bufio.NewScanner(f)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Text()
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		hs := HostSlot{Name: fields[0], Slots: 1}
		for _, tok := range fields[1:] {
			val, ok := strings.CutPrefix(tok, "slots=")
			if !ok {
				return nil, fmt.Errorf("%s:%d: unknown token %q (want \"host [slots=N]\")", path, lineNo, tok)
			}
			n, err := strconv.Atoi(val)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("%s:%d: bad slot count %q", path, lineNo, val)
			}
			hs.Slots = n
		}
		if seen[hs.Name] {
			return nil, fmt.Errorf("%s:%d: host %q listed twice", path, lineNo, hs.Name)
		}
		seen[hs.Name] = true
		hosts = append(hosts, hs)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("%s: no hosts", path)
	}
	return hosts, nil
}

// ParseHostList reads the inline -hosts form: comma-separated host names,
// each with an optional ":slots" suffix ("node-a:2,node-b").
func ParseHostList(s string) ([]HostSlot, error) {
	var hosts []HostSlot
	seen := make(map[string]bool)
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			return nil, fmt.Errorf("empty host in list %q", s)
		}
		hs := HostSlot{Name: item, Slots: 1}
		if name, slots, ok := strings.Cut(item, ":"); ok {
			n, err := strconv.Atoi(slots)
			if err != nil || n <= 0 || name == "" {
				return nil, fmt.Errorf("bad host entry %q (want \"host[:slots]\")", item)
			}
			hs = HostSlot{Name: name, Slots: n}
		}
		if seen[hs.Name] {
			return nil, fmt.Errorf("host %q listed twice", hs.Name)
		}
		seen[hs.Name] = true
		hosts = append(hosts, hs)
	}
	return hosts, nil
}

// Placement selects how unpinned ranks are assigned to hostfile hosts.
type Placement int

const (
	// PlaceBlock fills each host's slots with consecutive ranks before
	// moving to the next host — components land on as few hosts as possible.
	PlaceBlock Placement = iota
	// PlaceCyclic deals ranks round-robin across the hosts (skipping hosts
	// whose slots are full) — components spread over as many hosts as
	// possible.
	PlaceCyclic
)

// String returns the CLI spelling of the placement policy.
func (p Placement) String() string {
	switch p {
	case PlaceBlock:
		return "block"
	case PlaceCyclic:
		return "cyclic"
	}
	return fmt.Sprintf("Placement(%d)", int(p))
}

// ParsePlacement reads a placement policy name ("block" or "cyclic").
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "block", "":
		return PlaceBlock, nil
	case "cyclic":
		return PlaceCyclic, nil
	}
	return 0, fmt.Errorf("unknown placement %q (want block or cyclic)", s)
}

// Backend names how ranks are spawned.
//
// Deprecated: backends are now typed Spawner values. Use the constructors
// (NewLocalSpawner, NewExecSpawner, NewSSHSpawner, NewDaemonSpawner) or
// NewSpawner to convert a parsed name; the string constants remain only as
// CLI spellings.
type Backend string

const (
	// BackendLocal names the direct-spawn backend (LocalSpawner): every rank
	// runs on the launcher's host, host assignments are not allowed.
	//
	// Deprecated: use NewLocalSpawner.
	BackendLocal Backend = "local"
	// BackendExec names the local-agent backend (ExecSpawner): every rank
	// runs through the agent command on the launcher's own host, with host
	// assignments treated as labels only.
	//
	// Deprecated: use NewExecSpawner.
	BackendExec Backend = "exec"
	// BackendSSH names the ssh backend (SSHSpawner): each rank's agent runs
	// on its assigned host via ssh.
	//
	// Deprecated: use NewSSHSpawner.
	BackendSSH Backend = "ssh"
	// BackendDaemon names the persistent-daemon backend (DaemonSpawner):
	// each host block is shipped in one request to the mphd agent daemon
	// already running there.
	//
	// Deprecated: use NewDaemonSpawner.
	BackendDaemon Backend = "daemon"
)

// ParseBackend reads a backend name ("local", "exec", "ssh", or "daemon";
// "" selects local). Pass the result to NewSpawner.
func ParseBackend(s string) (Backend, error) {
	switch Backend(s) {
	case "":
		return BackendLocal, nil
	case BackendLocal, BackendExec, BackendSSH, BackendDaemon:
		return Backend(s), nil
	}
	return "", fmt.Errorf("unknown backend %q (want local, exec, ssh, or daemon)", s)
}

// Proc is one placed rank of a LaunchSpec.
type Proc struct {
	// Rank is the world rank.
	Rank int
	// Host is the placement host ("" = the launcher's host).
	Host string
	// Argv is the command and arguments.
	Argv []string
	// Env holds extra KEY=VALUE pairs for this rank only.
	Env []string
	// Exe is the index of the spec entry the rank belongs to, for the
	// per-component failure report.
	Exe int
}

// LaunchSpec is a fully placed MPMD job: every rank with its host, command,
// and environment, plus the job-level knobs. It is the typed replacement for
// the (entries, total, registration, timeout, grace, extraEnv) parameter
// trail the launcher used to thread, and it lets tests drive launches
// without building a binary.
type LaunchSpec struct {
	// Procs lists every rank in world order.
	Procs []Proc
	// Registration is the registration-file path forwarded to every rank
	// ("" = none). Remote backends ship the file's contents through the
	// agent, so it only needs to exist on the launcher's host.
	Registration string
	// Timeout bounds the rendezvous exchange (default 120s).
	Timeout time.Duration
	// Grace is how long survivors of a failed rank get to exit after the
	// abort broadcast before their process groups are killed — on every
	// host (default 5s).
	Grace time.Duration
	// ExtraEnv entries (KEY=VALUE) are appended to every rank's environment
	// (observability dump directories and the like).
	ExtraEnv []string
	// Bind is the host or IP the rendezvous and every rank's listener bind
	// ("" = backend default: loopback unless the spawner wants routable
	// addresses, in which case all interfaces with a detected routable IP).
	Bind string
	// Quiet suppresses the launcher's informational banner (benchmark
	// harnesses that launch hundreds of jobs).
	Quiet bool
	// Spawner starts the host-local rank blocks (nil = resolved from the
	// deprecated Backend field, defaulting to NewLocalSpawner).
	Spawner Spawner
	// Backend selects how ranks are spawned when Spawner is nil.
	//
	// Deprecated: set Spawner instead.
	Backend Backend
	// AgentPath is the mphrun binary to run as the remote agent ("" = this
	// executable), used when Spawner is resolved from Backend. Under
	// BackendSSH the path must exist on every remote host.
	//
	// Deprecated: pass the path to the spawner constructor instead.
	AgentPath string
	// SSHOptions are extra ssh arguments inserted before the host (after
	// the built-in BatchMode options), used when Spawner is resolved from
	// Backend.
	//
	// Deprecated: pass the options to NewSSHSpawner instead.
	SSHOptions []string
}

// spawner resolves the spec's Spawner, falling back to the deprecated
// Backend field for callers that still fill in strings.
func (s *LaunchSpec) spawner() (Spawner, error) {
	if s.Spawner != nil {
		return s.Spawner, nil
	}
	return NewSpawner(s.Backend, SpawnerOptions{AgentPath: s.AgentPath, SSHOptions: s.SSHOptions})
}

// NewLaunchSpec places the ranks of the parsed entries onto hosts with the
// given policy and returns the resulting spec. With no hosts, unpinned
// ranks stay on the launcher's host; pinned entries always land on their
// pin. When ranks outnumber the hostfile's total slots, placement wraps
// around (oversubscription), matching what the paper's vendor launchers do
// when a node list is shorter than the job.
func NewLaunchSpec(entries []Entry, hosts []HostSlot, policy Placement) (*LaunchSpec, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("mpirun: no executables")
	}
	total := 0
	for _, e := range entries {
		if e.Nprocs <= 0 {
			return nil, fmt.Errorf("mpirun: entry %q: processor count %d", strings.Join(e.Argv, " "), e.Nprocs)
		}
		if len(e.Argv) == 0 {
			return nil, fmt.Errorf("mpirun: entry with no command")
		}
		total += e.Nprocs
	}
	assign, err := placeRanks(entries, hosts, policy, total)
	if err != nil {
		return nil, err
	}
	spec := &LaunchSpec{Procs: make([]Proc, 0, total)}
	rank := 0
	for ei, e := range entries {
		for i := 0; i < e.Nprocs; i++ {
			spec.Procs = append(spec.Procs, Proc{
				Rank: rank,
				Host: assign[rank],
				Argv: e.Argv,
				Exe:  ei,
			})
			rank++
		}
	}
	injectSlotShares(spec.Procs, hosts)
	return spec, nil
}

// injectSlotShares appends a GOMAXPROCS override to each rank placed on a
// host with a known slot count: its share of the host's slots, floored at
// one. On an oversubscribed host every rank would otherwise size its
// scheduler to the full machine and thrash; with the share, co-located
// ranks split the slots evenly. A caller's own per-rank Env GOMAXPROCS
// still wins — the share is prepended, and child environments keep the last
// value of a duplicated key.
func injectSlotShares(procs []Proc, hosts []HostSlot) {
	if len(hosts) == 0 {
		return
	}
	slots := make(map[string]int, len(hosts))
	for _, h := range hosts {
		slots[h.Name] = h.Slots
	}
	ranksOn := make(map[string]int)
	for _, p := range procs {
		ranksOn[p.Host]++
	}
	for i := range procs {
		total, known := slots[procs[i].Host]
		if !known {
			continue
		}
		share := total / ranksOn[procs[i].Host]
		if share < 1 {
			share = 1
		}
		procs[i].Env = append([]string{fmt.Sprintf("GOMAXPROCS=%d", share)}, procs[i].Env...)
	}
}

// placeRanks computes the host of every rank: pins first, then the policy
// over the hostfile for the rest.
func placeRanks(entries []Entry, hosts []HostSlot, policy Placement, total int) ([]string, error) {
	assign := make([]string, total)
	var unpinned []int
	rank := 0
	for _, e := range entries {
		for i := 0; i < e.Nprocs; i++ {
			if e.Host != "" {
				assign[rank] = e.Host
			} else {
				unpinned = append(unpinned, rank)
			}
			rank++
		}
	}
	if len(hosts) == 0 || len(unpinned) == 0 {
		return assign, nil
	}
	seq := placementSequence(hosts, policy, len(unpinned))
	for i, r := range unpinned {
		assign[r] = seq[i]
	}
	return assign, nil
}

// placementSequence expands a hostfile into the host of each of n unpinned
// ranks under the policy. Both policies wrap around once every slot is
// used, ignoring slot counts from then on (oversubscription).
func placementSequence(hosts []HostSlot, policy Placement, n int) []string {
	seq := make([]string, 0, n)
	switch policy {
	case PlaceCyclic:
		used := make([]int, len(hosts))
		for len(seq) < n {
			progressed := false
			for i, h := range hosts {
				if len(seq) == n {
					break
				}
				if used[i] < h.Slots {
					used[i]++
					seq = append(seq, h.Name)
					progressed = true
				}
			}
			if !progressed { // every slot used: wrap, plain round robin
				for i := range used {
					used[i] = 0
				}
			}
		}
	default: // PlaceBlock
		for len(seq) < n {
			for _, h := range hosts {
				for s := 0; s < h.Slots && len(seq) < n; s++ {
					seq = append(seq, h.Name)
				}
			}
		}
	}
	return seq
}

// Validate checks the spec for internal consistency and spawner fit.
func (s *LaunchSpec) Validate() error {
	if len(s.Procs) == 0 {
		return fmt.Errorf("mpirun: spec has no ranks")
	}
	sp, err := s.spawner()
	if err != nil {
		return fmt.Errorf("mpirun: %w", err)
	}
	_, local := sp.(*LocalSpawner)
	for i, p := range s.Procs {
		if p.Rank != i {
			return fmt.Errorf("mpirun: spec rank %d at index %d (ranks must be dense and ordered)", p.Rank, i)
		}
		if len(p.Argv) == 0 {
			return fmt.Errorf("mpirun: rank %d has no command", i)
		}
		if p.Host != "" && local {
			return fmt.Errorf("mpirun: rank %d placed on host %q but the backend is local; use -backend exec, ssh, or daemon", i, p.Host)
		}
	}
	return nil
}

// Hosts returns the distinct placement hosts of the spec in first-use
// order, with "" (the launcher's host) included if any rank runs there.
func (s *LaunchSpec) Hosts() []string {
	var hosts []string
	seen := make(map[string]bool)
	for _, p := range s.Procs {
		if !seen[p.Host] {
			seen[p.Host] = true
			hosts = append(hosts, p.Host)
		}
	}
	return hosts
}
