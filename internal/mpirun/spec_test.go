package mpirun

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseCmdfile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.cmd")
	content := `
# a comment
3 ./atm -x   # trailing comment
2 host=node-b ./ocn
1 ./coupler
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, total, err := ParseCmdfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if total != 6 || len(entries) != 3 {
		t.Fatalf("total %d, entries %d", total, len(entries))
	}
	if entries[0].Nprocs != 3 || entries[0].Argv[0] != "./atm" || entries[0].Argv[1] != "-x" || entries[0].Host != "" {
		t.Errorf("entry 0: %+v", entries[0])
	}
	if entries[1].Host != "node-b" || entries[1].Argv[0] != "./ocn" {
		t.Errorf("entry 1: %+v", entries[1])
	}
	if entries[2].Argv[0] != "./coupler" {
		t.Errorf("entry 2: %+v", entries[2])
	}
}

func TestParseCmdfileErrors(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"empty":      "# nothing\n",
		"bad count":  "x ./atm\n",
		"zero":       "0 ./atm\n",
		"negative":   "-2 ./atm\n",
		"no cmd":     "3\n",
		"empty pin":  "3 host= ./atm\n",
		"pin no cmd": "3 host=node-a\n",
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(name, " ", "_")+".cmd")
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := ParseCmdfile(path); err == nil {
				t.Fatalf("accepted %q", content)
			}
		})
	}
	if _, _, err := ParseCmdfile(filepath.Join(dir, "missing.cmd")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParseColonSpec(t *testing.T) {
	entries, total, err := ParseColonSpec([]string{"3", "./atm", "-x", ":", "2", "host=node-b", "./ocn", ":", "1", "./cpl"})
	if err != nil {
		t.Fatal(err)
	}
	if total != 6 || len(entries) != 3 {
		t.Fatalf("total %d, entries %d", total, len(entries))
	}
	if entries[0].Nprocs != 3 || entries[0].Argv[1] != "-x" {
		t.Errorf("entry 0 %+v", entries[0])
	}
	if entries[1].Host != "node-b" {
		t.Errorf("entry 1 %+v", entries[1])
	}
	if entries[2].Argv[0] != "./cpl" {
		t.Errorf("entry 2 %+v", entries[2])
	}
}

func TestParseColonSpecErrors(t *testing.T) {
	cases := [][]string{
		{":"},
		{"3", "./atm", ":"},
		{":", "3", "./atm"},
		{"x", "./atm"},
		{"0", "./atm"},
		{"3"},
		{"3", "host=", "./atm"},
	}
	for _, args := range cases {
		if _, _, err := ParseColonSpec(args); err == nil {
			t.Errorf("accepted %v", args)
		}
	}
}

func TestParseHostfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hosts")
	content := `
# cluster
node-a slots=2
node-b            # defaults to one slot
node-c slots=1
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	hosts, err := ParseHostfile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []HostSlot{{"node-a", 2}, {"node-b", 1}, {"node-c", 1}}
	if !reflect.DeepEqual(hosts, want) {
		t.Fatalf("hosts %+v, want %+v", hosts, want)
	}
}

func TestParseHostfileErrors(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"empty":     "# nothing\n",
		"bad slots": "node-a slots=x\n",
		"zero":      "node-a slots=0\n",
		"unknown":   "node-a cpus=4\n",
		"duplicate": "node-a\nnode-a\n",
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(name, " ", "_"))
			if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := ParseHostfile(path); err == nil {
				t.Fatalf("accepted %q", content)
			}
		})
	}
}

func TestParseHostList(t *testing.T) {
	hosts, err := ParseHostList("node-a:2, node-b")
	if err != nil {
		t.Fatal(err)
	}
	want := []HostSlot{{"node-a", 2}, {"node-b", 1}}
	if !reflect.DeepEqual(hosts, want) {
		t.Fatalf("hosts %+v, want %+v", hosts, want)
	}
	for _, bad := range []string{"", "node-a,,node-b", "node-a:x", "node-a:0", ":2", "node-a,node-a"} {
		if _, err := ParseHostList(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestParsePlacementAndBackend(t *testing.T) {
	for s, want := range map[string]Placement{"": PlaceBlock, "block": PlaceBlock, "cyclic": PlaceCyclic} {
		got, err := ParsePlacement(s)
		if err != nil || got != want {
			t.Errorf("ParsePlacement(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePlacement("random"); err == nil {
		t.Error("accepted placement \"random\"")
	}
	for s, want := range map[string]Backend{"": BackendLocal, "local": BackendLocal, "exec": BackendExec, "ssh": BackendSSH} {
		got, err := ParseBackend(s)
		if err != nil || got != want {
			t.Errorf("ParseBackend(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseBackend("rsh"); err == nil {
		t.Error("accepted backend \"rsh\"")
	}
}

// placements extracts the per-rank host assignment of a spec.
func placements(s *LaunchSpec) []string {
	hosts := make([]string, len(s.Procs))
	for i, p := range s.Procs {
		hosts[i] = p.Host
	}
	return hosts
}

func TestPlacementBlock(t *testing.T) {
	entries := []Entry{{Nprocs: 3, Argv: []string{"a"}}, {Nprocs: 2, Argv: []string{"b"}}}
	hosts := []HostSlot{{"h1", 2}, {"h2", 2}, {"h3", 2}}
	spec, err := NewLaunchSpec(entries, hosts, PlaceBlock)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"h1", "h1", "h2", "h2", "h3"}
	if got := placements(spec); !reflect.DeepEqual(got, want) {
		t.Fatalf("block placement %v, want %v", got, want)
	}
}

func TestPlacementCyclic(t *testing.T) {
	entries := []Entry{{Nprocs: 5, Argv: []string{"a"}}}
	hosts := []HostSlot{{"h1", 2}, {"h2", 1}, {"h3", 2}}
	spec, err := NewLaunchSpec(entries, hosts, PlaceCyclic)
	if err != nil {
		t.Fatal(err)
	}
	// Round one deals h1,h2,h3; round two skips h2 (single slot used).
	want := []string{"h1", "h2", "h3", "h1", "h3"}
	if got := placements(spec); !reflect.DeepEqual(got, want) {
		t.Fatalf("cyclic placement %v, want %v", got, want)
	}
}

func TestPlacementOversubscription(t *testing.T) {
	entries := []Entry{{Nprocs: 5, Argv: []string{"a"}}}
	hosts := []HostSlot{{"h1", 1}, {"h2", 1}}
	spec, err := NewLaunchSpec(entries, hosts, PlaceBlock)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"h1", "h2", "h1", "h2", "h1"}
	if got := placements(spec); !reflect.DeepEqual(got, want) {
		t.Fatalf("oversubscribed placement %v, want %v", got, want)
	}
}

func TestPlacementPins(t *testing.T) {
	entries := []Entry{
		{Nprocs: 2, Argv: []string{"a"}},
		{Nprocs: 1, Host: "pinned", Argv: []string{"b"}},
		{Nprocs: 1, Argv: []string{"c"}},
	}
	hosts := []HostSlot{{"h1", 2}, {"h2", 2}}
	spec, err := NewLaunchSpec(entries, hosts, PlaceBlock)
	if err != nil {
		t.Fatal(err)
	}
	// The pinned rank bypasses the policy; unpinned ranks fill the hostfile
	// in order.
	want := []string{"h1", "h1", "pinned", "h2"}
	if got := placements(spec); !reflect.DeepEqual(got, want) {
		t.Fatalf("pinned placement %v, want %v", got, want)
	}
	if got := spec.Hosts(); !reflect.DeepEqual(got, []string{"h1", "pinned", "h2"}) {
		t.Errorf("Hosts() = %v", got)
	}
}

func TestPlacementNoHostsStaysLocal(t *testing.T) {
	entries := []Entry{{Nprocs: 2, Argv: []string{"a"}}}
	spec, err := NewLaunchSpec(entries, nil, PlaceBlock)
	if err != nil {
		t.Fatal(err)
	}
	if got := placements(spec); !reflect.DeepEqual(got, []string{"", ""}) {
		t.Fatalf("placement without hosts %v, want all local", got)
	}
}

func TestLaunchSpecValidate(t *testing.T) {
	ok := &LaunchSpec{Procs: []Proc{{Rank: 0, Argv: []string{"a"}}, {Rank: 1, Argv: []string{"b"}}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	cases := map[string]*LaunchSpec{
		"empty":          {},
		"sparse ranks":   {Procs: []Proc{{Rank: 1, Argv: []string{"a"}}}},
		"no command":     {Procs: []Proc{{Rank: 0}}},
		"bad backend":    {Procs: []Proc{{Rank: 0, Argv: []string{"a"}}}, Backend: "rsh"},
		"host but local": {Procs: []Proc{{Rank: 0, Host: "h1", Argv: []string{"a"}}}},
	}
	for name, spec := range cases {
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	remote := &LaunchSpec{Procs: []Proc{{Rank: 0, Host: "h1", Argv: []string{"a"}}}, Backend: BackendExec}
	if err := remote.Validate(); err != nil {
		t.Errorf("exec spec with host rejected: %v", err)
	}
}

func TestAgentArgs(t *testing.T) {
	p := Proc{Rank: 0, Host: "node-a", Argv: []string{"./worker", "-v"}, Env: []string{"RANK_ONLY=1"}}
	block := Block{
		Procs:       []Proc{p},
		Size:        1,
		Rendezvous:  "10.0.0.1:4000",
		Regdata:     "QUJD",
		ExtraEnv:    []string{"MPH_STATS_DIR=/tmp/stats"},
		Passthrough: []string{"MPH_FAULT=x"},
	}
	args := agentArgs("node-a", block, p)
	joined := strings.Join(args, " ")
	want := "agent-exec -rank 0 -size 1 -rendezvous 10.0.0.1:4000 -host node-a " +
		"-regdata QUJD -env MPH_FAULT=x -env MPH_STATS_DIR=/tmp/stats -env RANK_ONLY=1 -- ./worker -v"
	if joined != want {
		t.Errorf("agentArgs:\n got %q\nwant %q", joined, want)
	}
}

func TestPassthroughEnv(t *testing.T) {
	environ := []string{
		"PATH=/bin",
		"MPH_FAULT=drop",
		EnvRank + "=3",
		EnvBind + "=0.0.0.0",
		"MPH_COLL_RING_THRESHOLD=1024",
		"NOTMPH=1",
	}
	got := passthroughEnv(environ)
	want := []string{"MPH_FAULT=drop", "MPH_COLL_RING_THRESHOLD=1024"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("passthroughEnv = %v, want %v", got, want)
	}
}

func TestShellJoin(t *testing.T) {
	got := shellJoin([]string{"/usr/bin/mphrun", "agent-exec", "-env", `A=x y`, "-env", `B=it's`})
	want := `'/usr/bin/mphrun' 'agent-exec' '-env' 'A=x y' '-env' 'B=it'\''s'`
	if got != want {
		t.Errorf("shellJoin:\n got %s\nwant %s", got, want)
	}
}
