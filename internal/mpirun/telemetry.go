package mpirun

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"mph/internal/mpi/perf"
)

// EnvTelemetry is the launcher's telemetry-channel address. When set, every
// rank dials it at transport init, runs the clock-sync handshake, and pushes
// perf.Snapshot reports: periodically at perf.EnvStatsInterval, and a final
// report at shutdown or abort. mphrun sets it for all children when live
// telemetry is requested.
const EnvTelemetry = "MPH_TELEMETRY"

// DefaultClockSyncRounds is how many ping-pong round trips the clock-sync
// handshake performs per rank. The estimate keeps the minimum-RTT round, so
// a handful of rounds suffices to dodge scheduling noise.
const DefaultClockSyncRounds = 8

// telemetryIOTimeout bounds every read or write on a telemetry connection.
// Telemetry is best-effort diagnostics: a wedged launcher must never stall a
// rank, and a wedged rank must never stall the aggregator.
const telemetryIOTimeout = 5 * time.Second

// DefaultStaleAfter is how long a live (non-final) rank may go without a
// report before the job view marks it stale. Reporting ranks push at their
// configured interval; several missed intervals on top of this floor means
// the rank is hung, partitioned, or dead.
const DefaultStaleAfter = 15 * time.Second

// ClockSample is one ping-pong round of the clock-sync handshake, all in
// nanoseconds: T0 is the client's send time and T3 its receive time on the
// client clock; TS is the server's reply time on the server clock.
type ClockSample struct {
	T0 int64 // client clock, ping sent
	TS int64 // server clock, pong sent
	T3 int64 // client clock, pong received
}

// RTT returns the round-trip time of the sample on the client clock.
func (s ClockSample) RTT() int64 { return s.T3 - s.T0 }

// EstimateClockOffset reduces the rounds of one clock-sync handshake to an
// offset estimate: server_clock − client_clock, NTP style. Each round's
// estimate assumes the server's reply timestamp was taken at the midpoint of
// the round trip (offset = TS − (T0+T3)/2); the round with the smallest RTT
// is kept, because midpoint error is bounded by half the RTT — the returned
// bound. ok is false when no sample is usable (none, or negative RTTs from a
// clock step mid-handshake).
func EstimateClockOffset(samples []ClockSample) (offset, bound int64, ok bool) {
	best := -1
	for i, s := range samples {
		if s.RTT() < 0 {
			continue
		}
		if best < 0 || s.RTT() < samples[best].RTT() {
			best = i
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	s := samples[best]
	return s.TS - (s.T0+s.T3)/2, s.RTT() / 2, true
}

// teleMsg is one line of the telemetry wire protocol (line-delimited JSON
// over TCP, one connection per rank):
//
//	client: {"kind":"hello","rank":R,"host":"H","pid":P}
//	client: {"kind":"ping","seq":i,"t0":<client ns>}     (×K rounds)
//	server: {"kind":"pong","seq":i,"ts":<server ns>}
//	client: {"kind":"report","seq":n,"final":F,"snap":{Snapshot}}
//
// Reports are one-way; the server never writes after the sync rounds.
type teleMsg struct {
	Kind  string         `json:"kind"`
	Rank  int            `json:"rank,omitempty"`
	Host  string         `json:"host,omitempty"`
	PID   int            `json:"pid,omitempty"`
	Seq   uint64         `json:"seq,omitempty"`
	T0    int64          `json:"t0,omitempty"`
	TS    int64          `json:"ts,omitempty"`
	Final bool           `json:"final,omitempty"`
	Snap  *perf.Snapshot `json:"snap,omitempty"`
}

// rankReport is the aggregator's state for one reporting rank: the latest
// snapshot, the previous one for rate derivation, and receipt bookkeeping.
type rankReport struct {
	snap     perf.Snapshot
	seq      uint64
	final    bool
	received time.Time
	prev     *perf.Snapshot
	prevAt   time.Time
}

// RankStatus is one rank's row of the live job view.
type RankStatus struct {
	Rank      int    `json:"rank"`
	Component string `json:"component,omitempty"`
	Host      string `json:"host,omitempty"`
	PID       int    `json:"pid,omitempty"`
	Final     bool   `json:"final"`
	Stale     bool   `json:"stale"`
	// LastReportAgeMS is how long ago the latest report arrived,
	// launcher clock.
	LastReportAgeMS int64 `json:"last_report_age_ms"`

	SentMsgs  uint64 `json:"sent_msgs"`
	SentBytes uint64 `json:"sent_bytes"`
	RecvMsgs  uint64 `json:"recv_msgs"`
	RecvBytes uint64 `json:"recv_bytes"`

	// Derived rates over the window between the two most recent reports
	// (zero until a second report arrives, or after the final report).
	SentMsgsPerSec  float64 `json:"sent_msgs_per_sec,omitempty"`
	SentBytesPerSec float64 `json:"sent_bytes_per_sec,omitempty"`
	RecvMsgsPerSec  float64 `json:"recv_msgs_per_sec,omitempty"`
	RecvBytesPerSec float64 `json:"recv_bytes_per_sec,omitempty"`

	ClockOffsetNS   int64 `json:"clock_offset_ns,omitempty"`
	ClockErrBoundNS int64 `json:"clock_err_bound_ns,omitempty"`
	CollNanos       int64 `json:"coll_nanos,omitempty"`
}

// JobView is the aggregator's merged, job-wide view of every rank report.
type JobView struct {
	WorldSize int `json:"world_size"`
	Reporting int `json:"reporting"`
	Finals    int `json:"finals"`

	TotalSentMsgs  uint64 `json:"total_sent_msgs"`
	TotalSentBytes uint64 `json:"total_sent_bytes"`
	TotalRecvMsgs  uint64 `json:"total_recv_msgs"`
	TotalRecvBytes uint64 `json:"total_recv_bytes"`

	// Reconciled reports sent==received across every reporting rank. Only
	// meaningful once every rank's final report is in; mid-run the totals
	// lag each other by in-flight traffic and report skew.
	Reconciled bool `json:"reconciled"`

	Ranks []RankStatus `json:"ranks"`
}

// Telemetry is the launcher-side telemetry plane: a TCP endpoint ranks push
// perf.Snapshot reports to (answering their clock-sync pings), an aggregator
// merging the per-rank reports into a live job view, and an http.Handler
// serving the view as Prometheus /metrics and JSON /status.
type Telemetry struct {
	ln         net.Listener
	addr       string
	size       int
	staleAfter time.Duration

	mu      sync.Mutex
	reports map[int]*rankReport
	conns   map[net.Conn]struct{}
	closed  bool

	wg sync.WaitGroup
}

// NewTelemetry starts the telemetry endpoint for a world of the given size
// on the given bind host ("" = loopback, wildcard = all interfaces with a
// routable address advertised). Close it when the job ends.
func NewTelemetry(bind string, size int) (*Telemetry, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpirun: telemetry for world of %d", size)
	}
	ln, err := net.Listen("tcp", ListenAddr(bind))
	if err != nil {
		return nil, fmt.Errorf("mpirun: telemetry listen: %w", err)
	}
	t := &Telemetry{
		ln:         ln,
		addr:       AdvertiseAddr(bind, ln.Addr()),
		size:       size,
		staleAfter: DefaultStaleAfter,
		reports:    make(map[int]*rankReport),
		conns:      make(map[net.Conn]struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the routable address ranks should dial (the EnvTelemetry
// value the launcher forwards).
func (t *Telemetry) Addr() string {
	return t.addr
}

// Close stops the endpoint. Aggregated reports stay readable afterwards, so
// the launcher can still print a final summary from them.
func (t *Telemetry) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	err := t.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
	return err
}

// acceptLoop receives rank connections and spawns a handler per rank.
func (t *Telemetry) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			defer func() {
				t.mu.Lock()
				delete(t.conns, conn)
				t.mu.Unlock()
				conn.Close()
			}()
			t.handleConn(conn)
		}()
	}
}

// handleConn runs one rank's telemetry session: hello, clock-sync pongs,
// then report ingestion until the rank hangs up. Malformed input just ends
// the session — telemetry must never take a job down.
func (t *Telemetry) handleConn(conn net.Conn) {
	rd := bufio.NewReader(conn)
	dec := json.NewDecoder(rd)
	rank, host, pid := -1, "", 0
	for {
		// No read deadline: a final-only rank is silent for the whole job.
		// The session ends when the rank hangs up or Close tears it down.
		var msg teleMsg
		if err := dec.Decode(&msg); err != nil {
			return
		}
		switch msg.Kind {
		case "hello":
			rank, host, pid = msg.Rank, msg.Host, msg.PID
		case "ping":
			pong := teleMsg{Kind: "pong", Seq: msg.Seq, TS: time.Now().UnixNano()}
			b, err := json.Marshal(pong)
			if err != nil {
				return
			}
			conn.SetWriteDeadline(time.Now().Add(telemetryIOTimeout))
			if _, err := conn.Write(append(b, '\n')); err != nil {
				return
			}
		case "report":
			if msg.Snap == nil {
				continue
			}
			r := msg.Snap.WorldRank
			if rank >= 0 {
				r = rank
			}
			if msg.Snap.Host == "" {
				msg.Snap.Host = host
			}
			if msg.Snap.PID == 0 {
				msg.Snap.PID = pid
			}
			t.Ingest(r, *msg.Snap, msg.Seq, msg.Final, time.Now())
		}
	}
}

// Ingest merges one rank report into the aggregate, keyed by world rank.
// Reports carry a per-rank sequence number; one arriving out of order
// (an older seq than the latest merged) is dropped, so a delayed periodic
// report can never overwrite the final one. Exported for aggregator tests;
// the TCP sessions call it internally.
func (t *Telemetry) Ingest(rank int, snap perf.Snapshot, seq uint64, final bool, at time.Time) {
	if rank < 0 || rank >= t.size {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.reports[rank]
	if !ok {
		t.reports[rank] = &rankReport{snap: snap, seq: seq, final: final, received: at}
		return
	}
	if seq < r.seq {
		return
	}
	prev, prevAt := r.snap, r.received
	r.prev, r.prevAt = &prev, prevAt
	r.snap, r.seq, r.received = snap, seq, at
	r.final = r.final || final
}

// SetStaleAfter overrides the no-report window after which a live rank is
// marked stale in the job view.
func (t *Telemetry) SetStaleAfter(d time.Duration) {
	t.mu.Lock()
	t.staleAfter = d
	t.mu.Unlock()
}

// View returns the merged job view as of now.
func (t *Telemetry) View() JobView { return t.viewAt(time.Now()) }

// viewAt builds the job view against an explicit clock (tests pin it).
func (t *Telemetry) viewAt(now time.Time) JobView {
	t.mu.Lock()
	defer t.mu.Unlock()
	view := JobView{WorldSize: t.size}
	ranks := make([]int, 0, len(t.reports))
	for r := range t.reports {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, rk := range ranks {
		r := t.reports[rk]
		s := &r.snap
		rs := RankStatus{
			Rank:            rk,
			Component:       s.Component,
			Host:            s.Host,
			PID:             s.PID,
			Final:           r.final,
			Stale:           !r.final && now.Sub(r.received) > t.staleAfter,
			LastReportAgeMS: now.Sub(r.received).Milliseconds(),
			SentMsgs:        s.TotalSentMsgs,
			SentBytes:       s.TotalSentBytes,
			RecvMsgs:        s.TotalRecvMsgs,
			RecvBytes:       s.TotalRecvBytes,
			ClockOffsetNS:   s.ClockOffsetNS,
			ClockErrBoundNS: s.ClockErrBoundNS,
			CollNanos:       s.CollNanos(),
		}
		if r.prev != nil && !r.final {
			if dt := r.received.Sub(r.prevAt).Seconds(); dt > 0 {
				rs.SentMsgsPerSec = float64(s.TotalSentMsgs-r.prev.TotalSentMsgs) / dt
				rs.SentBytesPerSec = float64(s.TotalSentBytes-r.prev.TotalSentBytes) / dt
				rs.RecvMsgsPerSec = float64(s.TotalRecvMsgs-r.prev.TotalRecvMsgs) / dt
				rs.RecvBytesPerSec = float64(s.TotalRecvBytes-r.prev.TotalRecvBytes) / dt
			}
		}
		view.Ranks = append(view.Ranks, rs)
		view.Reporting++
		if r.final {
			view.Finals++
		}
		view.TotalSentMsgs += rs.SentMsgs
		view.TotalSentBytes += rs.SentBytes
		view.TotalRecvMsgs += rs.RecvMsgs
		view.TotalRecvBytes += rs.RecvBytes
	}
	view.Reconciled = view.Reporting > 0 && view.TotalSentMsgs == view.TotalRecvMsgs
	return view
}

// Snapshots returns the latest snapshot of every reporting rank, sorted by
// world rank. With every final report in, these are exactly the per-rank
// stats files a -stats run would have collected.
func (t *Telemetry) Snapshots() []perf.Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]perf.Snapshot, 0, len(t.reports))
	for _, r := range t.reports {
		out = append(out, r.snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].WorldRank < out[j].WorldRank })
	return out
}

// Handler returns the launcher's job-telemetry HTTP surface:
//
//	/metrics        Prometheus text exposition of the job view
//	/status         the JobView as JSON (per-rank table, ages, rates)
//	/debug/pprof/   net/http/pprof for the launcher process itself
func (t *Telemetry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		t.WriteMetrics(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(t.View()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	perf.PprofMux(mux)
	return mux
}

// WriteMetrics renders the job view in the Prometheus text exposition
// format: job-wide totals plus per-rank series labeled by rank, component,
// and host.
func (t *Telemetry) WriteMetrics(w io.Writer) {
	view := t.View()
	gauge := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	gauge("mph_job_ranks_expected", "World size of the running job.", view.WorldSize)
	gauge("mph_job_ranks_reporting", "Ranks that have pushed at least one telemetry report.", view.Reporting)
	gauge("mph_job_ranks_final", "Ranks whose final (shutdown) report has arrived.", view.Finals)
	counter := func(name, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}
	counter("mph_job_sent_messages_total", "Messages sent, summed over reporting ranks.")
	fmt.Fprintf(w, "mph_job_sent_messages_total %d\n", view.TotalSentMsgs)
	counter("mph_job_recv_messages_total", "Messages received, summed over reporting ranks.")
	fmt.Fprintf(w, "mph_job_recv_messages_total %d\n", view.TotalRecvMsgs)
	counter("mph_job_sent_bytes_total", "Payload bytes sent, summed over reporting ranks.")
	fmt.Fprintf(w, "mph_job_sent_bytes_total %d\n", view.TotalSentBytes)
	counter("mph_job_recv_bytes_total", "Payload bytes received, summed over reporting ranks.")
	fmt.Fprintf(w, "mph_job_recv_bytes_total %d\n", view.TotalRecvBytes)

	if len(view.Ranks) == 0 {
		return
	}
	labels := func(rs RankStatus) string {
		return fmt.Sprintf("rank=%q,component=%q,host=%q",
			fmt.Sprint(rs.Rank), rs.Component, rs.Host)
	}
	counter("mph_rank_sent_messages_total", "Messages sent by one rank.")
	for _, rs := range view.Ranks {
		fmt.Fprintf(w, "mph_rank_sent_messages_total{%s} %d\n", labels(rs), rs.SentMsgs)
	}
	counter("mph_rank_recv_messages_total", "Messages received by one rank.")
	for _, rs := range view.Ranks {
		fmt.Fprintf(w, "mph_rank_recv_messages_total{%s} %d\n", labels(rs), rs.RecvMsgs)
	}
	counter("mph_rank_sent_bytes_total", "Payload bytes sent by one rank.")
	for _, rs := range view.Ranks {
		fmt.Fprintf(w, "mph_rank_sent_bytes_total{%s} %d\n", labels(rs), rs.SentBytes)
	}
	counter("mph_rank_recv_bytes_total", "Payload bytes received by one rank.")
	for _, rs := range view.Ranks {
		fmt.Fprintf(w, "mph_rank_recv_bytes_total{%s} %d\n", labels(rs), rs.RecvBytes)
	}
	counter("mph_rank_coll_seconds_total", "Cumulative wall time one rank spent inside collectives.")
	for _, rs := range view.Ranks {
		fmt.Fprintf(w, "mph_rank_coll_seconds_total{%s} %g\n", labels(rs), float64(rs.CollNanos)/1e9)
	}
	fmt.Fprintf(w, "# HELP mph_rank_last_report_age_seconds Seconds since the rank's latest report, launcher clock.\n# TYPE mph_rank_last_report_age_seconds gauge\n")
	for _, rs := range view.Ranks {
		fmt.Fprintf(w, "mph_rank_last_report_age_seconds{%s} %g\n", labels(rs), float64(rs.LastReportAgeMS)/1e3)
	}
	fmt.Fprintf(w, "# HELP mph_rank_clock_offset_seconds Estimated launcher-clock minus rank-clock offset.\n# TYPE mph_rank_clock_offset_seconds gauge\n")
	for _, rs := range view.Ranks {
		fmt.Fprintf(w, "mph_rank_clock_offset_seconds{%s} %g\n", labels(rs), float64(rs.ClockOffsetNS)/1e9)
	}
	fmt.Fprintf(w, "# HELP mph_rank_stale One when the rank has missed its reporting window without a final report.\n# TYPE mph_rank_stale gauge\n")
	for _, rs := range view.Ranks {
		v := 0
		if rs.Stale {
			v = 1
		}
		fmt.Fprintf(w, "mph_rank_stale{%s} %d\n", labels(rs), v)
	}
}

// TelemetryClient is the rank side of the telemetry channel: one TCP
// connection to the launcher, a clock-sync handshake at dial time, then
// one-way snapshot reports.
type TelemetryClient struct {
	mu     sync.Mutex
	conn   net.Conn
	enc    *json.Encoder
	seq    uint64
	closed bool

	offset, bound int64
	synced        bool
}

// DialTelemetry connects to the launcher's telemetry endpoint, introduces
// the rank, and runs the clock-sync handshake (DefaultClockSyncRounds
// ping-pong rounds, minimum-RTT midpoint estimate). The handshake result is
// available via ClockOffset; a handshake that fails midway degrades to "no
// offset" rather than failing the dial, because telemetry must never take a
// rank down.
func DialTelemetry(addr string, rank int, host string, pid int, timeout time.Duration) (*TelemetryClient, error) {
	if timeout <= 0 {
		timeout = telemetryIOTimeout
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("mpirun: dial telemetry %s: %w", addr, err)
	}
	c := &TelemetryClient{conn: conn, enc: json.NewEncoder(conn)}
	conn.SetWriteDeadline(time.Now().Add(timeout))
	if err := c.enc.Encode(teleMsg{Kind: "hello", Rank: rank, Host: host, PID: pid}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("mpirun: telemetry hello: %w", err)
	}
	c.clockSync(timeout)
	return c, nil
}

// clockSync runs the ping-pong rounds and stores the offset estimate.
func (c *TelemetryClient) clockSync(timeout time.Duration) {
	dec := json.NewDecoder(c.conn)
	samples := make([]ClockSample, 0, DefaultClockSyncRounds)
	for i := 0; i < DefaultClockSyncRounds; i++ {
		t0 := time.Now().UnixNano()
		c.conn.SetWriteDeadline(time.Now().Add(timeout))
		if err := c.enc.Encode(teleMsg{Kind: "ping", Seq: uint64(i), T0: t0}); err != nil {
			break
		}
		c.conn.SetReadDeadline(time.Now().Add(timeout))
		var pong teleMsg
		if err := dec.Decode(&pong); err != nil || pong.Kind != "pong" {
			break
		}
		samples = append(samples, ClockSample{T0: t0, TS: pong.TS, T3: time.Now().UnixNano()})
	}
	if off, bound, ok := EstimateClockOffset(samples); ok {
		c.offset, c.bound, c.synced = off, bound, true
	}
}

// ClockOffset returns the clock-sync result: the estimated
// launcher_clock − rank_clock offset, its half-RTT error bound, and whether
// the handshake produced a usable estimate.
func (c *TelemetryClient) ClockOffset() (offset, bound int64, ok bool) {
	return c.offset, c.bound, c.synced
}

// Report pushes one snapshot to the launcher. Reports carry a sequence
// number so the aggregator can drop reordered arrivals; final marks the
// shutdown (or abort) report that ends the rank's live rate derivation.
func (c *TelemetryClient) Report(snap perf.Snapshot, final bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return net.ErrClosed
	}
	c.seq++
	c.conn.SetWriteDeadline(time.Now().Add(telemetryIOTimeout))
	return c.enc.Encode(teleMsg{Kind: "report", Seq: c.seq, Final: final, Snap: &snap})
}

// Close hangs up the telemetry connection. Safe to call more than once.
func (c *TelemetryClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}
