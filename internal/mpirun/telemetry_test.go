package mpirun

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"mph/internal/mpi/perf"
)

func TestEstimateClockOffset(t *testing.T) {
	cases := []struct {
		name    string
		samples []ClockSample
		offset  int64
		bound   int64
		ok      bool
	}{
		{name: "no samples", ok: false},
		{
			name:    "clocks agree, symmetric rtt",
			samples: []ClockSample{{T0: 100, TS: 150, T3: 200}},
			offset:  0, bound: 50, ok: true,
		},
		{
			name:    "server ahead by 1000",
			samples: []ClockSample{{T0: 100, TS: 1150, T3: 200}},
			offset:  1000, bound: 50, ok: true,
		},
		{
			name:    "server behind by 1000",
			samples: []ClockSample{{T0: 2100, TS: 1150, T3: 2200}},
			offset:  -1000, bound: 50, ok: true,
		},
		{
			name: "min rtt round wins",
			samples: []ClockSample{
				{T0: 0, TS: 5000, T3: 1000},  // rtt 1000, noisy
				{T0: 2000, TS: 2060, T3: 2100}, // rtt 100, tight
				{T0: 4000, TS: 9000, T3: 4800}, // rtt 800
			},
			offset: 10, bound: 50, ok: true,
		},
		{
			name:    "negative rtt skipped",
			samples: []ClockSample{{T0: 500, TS: 400, T3: 100}},
			ok:      false,
		},
		{
			name: "negative rtt skipped, good round kept",
			samples: []ClockSample{
				{T0: 500, TS: 400, T3: 100},
				{T0: 100, TS: 150, T3: 200},
			},
			offset: 0, bound: 50, ok: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			offset, bound, ok := EstimateClockOffset(c.samples)
			if ok != c.ok {
				t.Fatalf("ok = %v, want %v", ok, c.ok)
			}
			if !ok {
				return
			}
			if offset != c.offset || bound != c.bound {
				t.Errorf("offset, bound = %d, %d; want %d, %d", offset, bound, c.offset, c.bound)
			}
		})
	}
}

// snapFor builds a minimal snapshot for aggregator tests.
func snapFor(rank int, sent, recv uint64) perf.Snapshot {
	return perf.Snapshot{
		WorldRank:     rank,
		Component:     "comp",
		Host:          "node-a",
		TotalSentMsgs: sent,
		TotalRecvMsgs: recv,
	}
}

func TestTelemetryIngestOutOfOrder(t *testing.T) {
	tele, err := NewTelemetry("", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer tele.Close()
	now := time.Now()

	// A delayed periodic report (seq 1) arriving after the final (seq 3)
	// must not overwrite it.
	tele.Ingest(0, snapFor(0, 10, 10), 3, true, now)
	tele.Ingest(0, snapFor(0, 5, 5), 1, false, now.Add(time.Second))

	view := tele.viewAt(now.Add(2 * time.Second))
	if view.Reporting != 1 || view.Finals != 1 {
		t.Fatalf("reporting, finals = %d, %d; want 1, 1", view.Reporting, view.Finals)
	}
	if got := view.Ranks[0].SentMsgs; got != 10 {
		t.Errorf("final report overwritten: sent = %d, want 10", got)
	}
	if !view.Ranks[0].Final {
		t.Error("final flag lost")
	}
}

func TestTelemetryIngestPartialAndStale(t *testing.T) {
	tele, err := NewTelemetry("", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer tele.Close()
	tele.SetStaleAfter(10 * time.Second)
	now := time.Now()

	// Only 2 of 3 ranks have reported; one of them long ago.
	tele.Ingest(0, snapFor(0, 7, 3), 1, false, now.Add(-30*time.Second))
	tele.Ingest(2, snapFor(2, 3, 7), 1, false, now.Add(-time.Second))

	view := tele.viewAt(now)
	if view.WorldSize != 3 || view.Reporting != 2 {
		t.Fatalf("world, reporting = %d, %d; want 3, 2", view.WorldSize, view.Reporting)
	}
	if !view.Ranks[0].Stale {
		t.Error("rank 0 silent for 30s should be stale")
	}
	if view.Ranks[1].Stale {
		t.Error("rank 2 reported 1s ago should not be stale")
	}
	if view.Ranks[0].LastReportAgeMS < 29_000 {
		t.Errorf("rank 0 age %dms, want ≈30000", view.Ranks[0].LastReportAgeMS)
	}
	// sent == recv job-wide: reconciled even mid-run.
	if !view.Reconciled {
		t.Errorf("10 sent == 10 recv should reconcile: %+v", view)
	}

	// A final report never goes stale.
	tele.Ingest(0, snapFor(0, 9, 4), 2, true, now.Add(-20*time.Second))
	view = tele.viewAt(now)
	if view.Ranks[0].Stale {
		t.Error("final rank must not be stale")
	}
	if view.Reconciled {
		t.Error("12 sent != 11 recv must not reconcile")
	}

	// Out-of-range ranks are dropped, not tracked.
	tele.Ingest(-1, snapFor(-1, 1, 1), 1, false, now)
	tele.Ingest(3, snapFor(3, 1, 1), 1, false, now)
	if got := tele.viewAt(now).Reporting; got != 2 {
		t.Errorf("out-of-range ranks ingested: reporting = %d, want 2", got)
	}
}

func TestTelemetryRates(t *testing.T) {
	tele, err := NewTelemetry("", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer tele.Close()
	now := time.Now()

	tele.Ingest(0, snapFor(0, 100, 0), 1, false, now)
	view := tele.viewAt(now)
	if view.Ranks[0].SentMsgsPerSec != 0 {
		t.Error("one report cannot have a rate")
	}

	// 400 more messages over 2 seconds: 200 msgs/s.
	tele.Ingest(0, snapFor(0, 500, 0), 2, false, now.Add(2*time.Second))
	view = tele.viewAt(now.Add(2 * time.Second))
	if got := view.Ranks[0].SentMsgsPerSec; got < 199 || got > 201 {
		t.Errorf("rate %g msgs/s, want 200", got)
	}

	// The final report freezes the rank: no rate on a finished row.
	tele.Ingest(0, snapFor(0, 600, 0), 3, true, now.Add(3*time.Second))
	view = tele.viewAt(now.Add(3 * time.Second))
	if view.Ranks[0].SentMsgsPerSec != 0 {
		t.Error("final rank still shows a rate")
	}
}

func TestTelemetryEndToEnd(t *testing.T) {
	tele, err := NewTelemetry("", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer tele.Close()

	// Two ranks dial, sync clocks, and push reports over real TCP.
	for rank := 0; rank < 2; rank++ {
		c, err := DialTelemetry(tele.Addr(), rank, "host-x", os.Getpid(), time.Second)
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		if _, bound, ok := c.ClockOffset(); !ok || bound < 0 {
			t.Errorf("rank %d: clock sync failed over loopback (ok=%v bound=%d)", rank, ok, bound)
		}
		snap := snapFor(rank, 4, 4)
		snap.Host = "" // the hello's host must backfill it
		if err := c.Report(snap, false); err != nil {
			t.Fatalf("rank %d report: %v", rank, err)
		}
		if err := c.Report(snapFor(rank, 9, 9), true); err != nil {
			t.Fatalf("rank %d final: %v", rank, err)
		}
		c.Close()
	}

	// Reports travel asynchronously; wait for both finals.
	deadline := time.Now().Add(5 * time.Second)
	var view JobView
	for {
		view = tele.View()
		if view.Finals == 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if view.Finals != 2 || view.Reporting != 2 {
		t.Fatalf("finals, reporting = %d, %d; want 2, 2", view.Finals, view.Reporting)
	}
	if view.TotalSentMsgs != 18 || !view.Reconciled {
		t.Errorf("totals %+v", view)
	}

	// The HTTP surface serves Prometheus text and the JSON view.
	srv := httptest.NewServer(tele.Handler())
	defer srv.Close()
	body := httpGet(t, srv.URL+"/metrics", "text/plain; version=0.0.4; charset=utf-8")
	for _, want := range []string{
		"mph_job_ranks_expected 2",
		"mph_job_ranks_final 2",
		"mph_job_sent_messages_total 18",
		`mph_rank_sent_messages_total{rank="1",component="comp",host="node-a"} 9`,
		"mph_rank_clock_offset_seconds",
		"mph_rank_stale",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	status := httpGet(t, srv.URL+"/status", "application/json")
	if !strings.Contains(status, `"world_size": 2`) || !strings.Contains(status, `"reconciled": true`) {
		t.Errorf("/status payload:\n%s", status)
	}
}

func httpGet(t *testing.T, url, wantType string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != wantType {
		t.Errorf("%s: content type %q, want %q", url, ct, wantType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
