package registry

import (
	"fmt"
	"strconv"
	"strings"
)

// Arguments provides typed access to the argument strings appended to a
// component or instance line — the paper's MPH_get_argument facility
// (§4.4): "alpha=3" yields integer 3 for key "alpha", "beta=4.5" yields
// real 4.5, and positional fields are addressed by 1-based field number.
type Arguments struct {
	fields []string
}

// NewArguments wraps a line's argument fields.
func NewArguments(fields []string) Arguments {
	return Arguments{fields: append([]string(nil), fields...)}
}

// Len returns the number of argument fields.
func (a Arguments) Len() int { return len(a.fields) }

// Fields returns a copy of the raw argument fields.
func (a Arguments) Fields() []string { return append([]string(nil), a.fields...) }

// lookup finds "key=value" among the fields.
func (a Arguments) lookup(key string) (string, bool) {
	prefix := key + "="
	for _, f := range a.fields {
		if strings.HasPrefix(f, prefix) {
			return f[len(prefix):], true
		}
	}
	return "", false
}

// String returns the value of "key=value", reporting presence.
func (a Arguments) String(key string) (string, bool) {
	return a.lookup(key)
}

// Int parses the value of "key=value" as an integer. The boolean reports
// whether the key is present; a present but malformed value is an error.
func (a Arguments) Int(key string) (int, bool, error) {
	v, ok := a.lookup(key)
	if !ok {
		return 0, false, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, true, fmt.Errorf("registry: argument %s=%q is not an integer", key, v)
	}
	return n, true, nil
}

// Float parses the value of "key=value" as a float64.
func (a Arguments) Float(key string) (float64, bool, error) {
	v, ok := a.lookup(key)
	if !ok {
		return 0, false, nil
	}
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, true, fmt.Errorf("registry: argument %s=%q is not a real number", key, v)
	}
	return x, true, nil
}

// Bool parses the value of "key=value" as a flag; "on", "true", "yes" and
// "1" are true, "off", "false", "no" and "0" are false (the paper's
// "debug=on" / "debug=off").
func (a Arguments) Bool(key string) (bool, bool, error) {
	v, ok := a.lookup(key)
	if !ok {
		return false, false, nil
	}
	switch strings.ToLower(v) {
	case "on", "true", "yes", "1":
		return true, true, nil
	case "off", "false", "no", "0":
		return false, true, nil
	}
	return false, true, fmt.Errorf("registry: argument %s=%q is not a flag", key, v)
}

// Field returns the n-th argument field (1-based, matching the paper's
// field_num convention), reporting presence.
func (a Arguments) Field(n int) (string, bool) {
	if n < 1 || n > len(a.fields) {
		return "", false
	}
	return a.fields[n-1], true
}
