package registry

import (
	"testing"
	"testing/quick"
)

// Fields from the paper's Ocean1/Ocean2/Ocean3 example lines (§4.4).
var paperArgs = NewArguments([]string{"inf3", "outf3", "alpha=3", "beta=4.5", "debug=on"})

func TestArgumentsIntPaperExample(t *testing.T) {
	// "alpha2 will get integer 3 if a string alpha=3 is present"
	v, ok, err := paperArgs.Int("alpha")
	if err != nil || !ok || v != 3 {
		t.Fatalf("Int(alpha) = %d, %v, %v", v, ok, err)
	}
}

func TestArgumentsFloatPaperExample(t *testing.T) {
	// "beta will get real 4.5 if a string beta=4.5 is present"
	v, ok, err := paperArgs.Float("beta")
	if err != nil || !ok || v != 4.5 {
		t.Fatalf("Float(beta) = %g, %v, %v", v, ok, err)
	}
}

func TestArgumentsFieldPaperExample(t *testing.T) {
	// "fname will get string infile3 if such a string is in the first field"
	v, ok := paperArgs.Field(1)
	if !ok || v != "inf3" {
		t.Fatalf("Field(1) = %q, %v", v, ok)
	}
	if _, ok := paperArgs.Field(0); ok {
		t.Error("Field(0) should be absent (fields are 1-based)")
	}
	if _, ok := paperArgs.Field(6); ok {
		t.Error("Field(6) should be absent")
	}
	last, ok := paperArgs.Field(5)
	if !ok || last != "debug=on" {
		t.Errorf("Field(5) = %q, %v", last, ok)
	}
}

func TestArgumentsBool(t *testing.T) {
	on, ok, err := paperArgs.Bool("debug")
	if err != nil || !ok || !on {
		t.Fatalf("Bool(debug) = %v, %v, %v", on, ok, err)
	}
	off := NewArguments([]string{"debug=off"})
	v, ok, err := off.Bool("debug")
	if err != nil || !ok || v {
		t.Fatalf("Bool(debug=off) = %v, %v, %v", v, ok, err)
	}
	bad := NewArguments([]string{"debug=maybe"})
	if _, ok, err := bad.Bool("debug"); !ok || err == nil {
		t.Fatal("Bool(debug=maybe) should be present but erroneous")
	}
}

func TestArgumentsMissingKeys(t *testing.T) {
	if _, ok, err := paperArgs.Int("gamma"); ok || err != nil {
		t.Error("Int on missing key should report absent, no error")
	}
	if _, ok, err := paperArgs.Float("gamma"); ok || err != nil {
		t.Error("Float on missing key should report absent, no error")
	}
	if _, ok := paperArgs.String("gamma"); ok {
		t.Error("String on missing key should report absent")
	}
	if _, ok, err := paperArgs.Bool("gamma"); ok || err != nil {
		t.Error("Bool on missing key should report absent, no error")
	}
}

func TestArgumentsMalformedValues(t *testing.T) {
	a := NewArguments([]string{"alpha=notint", "beta=notfloat"})
	if _, ok, err := a.Int("alpha"); !ok || err == nil {
		t.Error("Int should flag a present but malformed value")
	}
	if _, ok, err := a.Float("beta"); !ok || err == nil {
		t.Error("Float should flag a present but malformed value")
	}
}

func TestArgumentsStringValue(t *testing.T) {
	a := NewArguments([]string{"dynamics=finite_volume"})
	v, ok := a.String("dynamics")
	if !ok || v != "finite_volume" {
		t.Errorf("String(dynamics) = %q, %v", v, ok)
	}
}

func TestArgumentsCopySemantics(t *testing.T) {
	raw := []string{"a=1"}
	a := NewArguments(raw)
	raw[0] = "a=2"
	v, _, _ := a.Int("a")
	if v != 1 {
		t.Error("Arguments aliases its input slice")
	}
	f := a.Fields()
	f[0] = "a=3"
	v, _, _ = a.Int("a")
	if v != 1 {
		t.Error("Fields() exposes internal storage")
	}
}

func TestArgumentsFieldProperty(t *testing.T) {
	// For any field list, Field(i) for i in 1..Len returns the i-1th raw
	// field, and out-of-range indices are absent.
	prop := func(fields []string) bool {
		a := NewArguments(fields)
		if a.Len() != len(fields) {
			return false
		}
		for i := 1; i <= len(fields); i++ {
			v, ok := a.Field(i)
			if !ok || v != fields[i-1] {
				return false
			}
		}
		_, ok0 := a.Field(0)
		_, okN := a.Field(len(fields) + 1)
		return !ok0 && !okN
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
