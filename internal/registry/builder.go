package registry

import (
	"fmt"
	"strings"
)

// Builder constructs registration files programmatically — the ensemble
// and benchmark drivers generate layouts instead of hand-writing text. The
// result is rendered to the canonical file syntax and re-parsed, so a built
// registry passes exactly the same validation as one read from disk.
type Builder struct {
	lines []string
	err   error
}

// NewBuilder starts an empty registration file.
func NewBuilder() *Builder { return &Builder{} }

// Single adds a single-component executable entry with optional argument
// fields.
func (b *Builder) Single(name string, fields ...string) *Builder {
	if b.err != nil {
		return b
	}
	if err := checkName(name); err != nil {
		b.err = err
		return b
	}
	if len(fields) > MaxFields {
		b.err = fmt.Errorf("registry: component %q: %d fields exceed the limit of %d", name, len(fields), MaxFields)
		return b
	}
	b.lines = append(b.lines, strings.Join(append([]string{name}, fields...), " "))
	return b
}

// Line is one component or instance line of a block entry.
type Line struct {
	Name      string
	Low, High int
	Fields    []string
}

// MultiComponent adds a multi-component executable entry.
func (b *Builder) MultiComponent(lines ...Line) *Builder {
	return b.block("Multi_Component_Begin", "Multi_Component_End", lines)
}

// MultiInstance adds a multi-instance executable entry.
func (b *Builder) MultiInstance(lines ...Line) *Builder {
	return b.block("Multi_Instance_Begin", "Multi_Instance_End", lines)
}

// InstancesEvenly adds a multi-instance entry with k instances named
// prefix1..prefixK, each spanning perInstance processors contiguously, with
// per-instance fields supplied by fieldsFor (may be nil).
func (b *Builder) InstancesEvenly(prefix string, k, perInstance int, fieldsFor func(i int) []string) *Builder {
	if b.err != nil {
		return b
	}
	if k <= 0 || perInstance <= 0 {
		b.err = fmt.Errorf("registry: %d instances of %d processors", k, perInstance)
		return b
	}
	lines := make([]Line, k)
	for i := 0; i < k; i++ {
		var fields []string
		if fieldsFor != nil {
			fields = fieldsFor(i)
		}
		lines[i] = Line{
			Name:   fmt.Sprintf("%s%d", prefix, i+1),
			Low:    i * perInstance,
			High:   (i+1)*perInstance - 1,
			Fields: fields,
		}
	}
	return b.MultiInstance(lines...)
}

func (b *Builder) block(open, closeKw string, lines []Line) *Builder {
	if b.err != nil {
		return b
	}
	if len(lines) == 0 {
		b.err = fmt.Errorf("registry: empty %s block", open)
		return b
	}
	out := []string{open}
	for _, l := range lines {
		if err := checkName(l.Name); err != nil {
			b.err = err
			return b
		}
		if l.Low < 0 || l.High < l.Low {
			b.err = fmt.Errorf("registry: component %q: invalid range %d..%d", l.Name, l.Low, l.High)
			return b
		}
		if len(l.Fields) > MaxFields {
			b.err = fmt.Errorf("registry: component %q: %d fields exceed the limit of %d", l.Name, len(l.Fields), MaxFields)
			return b
		}
		parts := append([]string{l.Name, fmt.Sprint(l.Low), fmt.Sprint(l.High)}, l.Fields...)
		out = append(out, strings.Join(parts, " "))
	}
	out = append(out, closeKw)
	b.lines = append(b.lines, out...)
	return b
}

// checkName rejects names the file syntax cannot represent.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("registry: empty component name")
	}
	if strings.ContainsAny(name, " \t\n!") {
		return fmt.Errorf("registry: component name %q contains whitespace or '!'", name)
	}
	if reserved(name) {
		return fmt.Errorf("registry: component name %q is a directive", name)
	}
	return nil
}

// Text renders the registration file.
func (b *Builder) Text() (string, error) {
	if b.err != nil {
		return "", b.err
	}
	var sb strings.Builder
	sb.WriteString("BEGIN\n")
	for _, l := range b.lines {
		sb.WriteString(l)
		sb.WriteString("\n")
	}
	sb.WriteString("END\n")
	return sb.String(), nil
}

// Build renders and parses the file, returning the validated registry.
func (b *Builder) Build() (*Registry, error) {
	text, err := b.Text()
	if err != nil {
		return nil, err
	}
	return Parse(text)
}
