package registry

import (
	"strings"
	"testing"
)

func TestBuilderSingleEntries(t *testing.T) {
	reg, err := NewBuilder().
		Single("atmosphere").
		Single("ocean", "infile=o.in", "debug=on").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Executables) != 2 || reg.Executables[1].Components[0].Fields[1] != "debug=on" {
		t.Fatalf("built %+v", reg)
	}
}

func TestBuilderBlocks(t *testing.T) {
	reg, err := NewBuilder().
		MultiComponent(
			Line{Name: "atm", Low: 0, High: 3},
			Line{Name: "lnd", Low: 0, High: 3}, // overlap is legal here
		).
		MultiInstance(
			Line{Name: "E1", Low: 0, High: 1, Fields: []string{"seed=1"}},
			Line{Name: "E2", Low: 2, High: 3, Fields: []string{"seed=2"}},
		).
		Single("hub").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Executables) != 3 {
		t.Fatalf("%d executables", len(reg.Executables))
	}
	if reg.Executables[0].Kind != MultiComponent || reg.Executables[1].Kind != MultiInstance {
		t.Fatal("kinds wrong")
	}
	ei, ok := reg.FindMultiInstanceByPrefix("E")
	if !ok || ei != 1 {
		t.Fatal("prefix lookup failed")
	}
}

func TestBuilderInstancesEvenly(t *testing.T) {
	reg, err := NewBuilder().
		InstancesEvenly("Ocean", 3, 4, func(i int) []string {
			return []string{"member=" + string(rune('0'+i))}
		}).
		Single("statistics").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	mi := reg.Executables[0]
	if len(mi.Components) != 3 || mi.Size() != 12 {
		t.Fatalf("instances %+v", mi)
	}
	if mi.Components[2].Name != "Ocean3" || mi.Components[2].Low != 8 || mi.Components[2].High != 11 {
		t.Fatalf("instance 3 = %+v", mi.Components[2])
	}
	if mi.Components[1].Fields[0] != "member=1" {
		t.Fatalf("fields %+v", mi.Components[1].Fields)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := map[string]*Builder{
		"empty name":       NewBuilder().Single(""),
		"space in name":    NewBuilder().Single("two words"),
		"bang in name":     NewBuilder().Single("a!b"),
		"directive name":   NewBuilder().Single("END"),
		"too many fields":  NewBuilder().Single("x", "1", "2", "3", "4", "5", "6"),
		"empty block":      NewBuilder().MultiComponent(),
		"bad range":        NewBuilder().MultiComponent(Line{Name: "x", Low: 3, High: 1}),
		"negative range":   NewBuilder().MultiComponent(Line{Name: "x", Low: -1, High: 1}),
		"block bad fields": NewBuilder().MultiInstance(Line{Name: "x", Low: 0, High: 1, Fields: []string{"1", "2", "3", "4", "5", "6"}}),
		"zero instances":   NewBuilder().InstancesEvenly("E", 0, 2, nil),
		"zero per":         NewBuilder().InstancesEvenly("E", 2, 0, nil),
		"duplicate names":  NewBuilder().Single("x").Single("x"),
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := b.Build(); err == nil {
				t.Fatal("Build succeeded")
			}
		})
	}
}

func TestBuilderErrorSticks(t *testing.T) {
	b := NewBuilder().Single("").Single("fine")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "empty component name") {
		t.Fatalf("first error not preserved: %v", err)
	}
	if _, err := b.Text(); err == nil {
		t.Fatal("Text succeeded after error")
	}
}

func TestBuilderTextParsesBack(t *testing.T) {
	text, err := NewBuilder().
		Single("coupler").
		MultiComponent(Line{Name: "a", Low: 0, High: 1}, Line{Name: "b", Low: 2, High: 3}).
		Text()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(text); err != nil {
		t.Fatalf("generated text does not parse: %v\n%s", err, text)
	}
}
