package registry_test

import (
	"fmt"

	"mph/internal/registry"
)

// ExampleParse parses the paper's §4.3 three-executable registration file.
func ExampleParse() {
	reg, err := registry.Parse(`
BEGIN
Multi_Component_Begin ! 1st multi-comp exec
atmosphere 0 15
land       0 15      ! overlap with atm
chemistry 16 19
Multi_Component_End
ocean
coupler
END
`)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, e := range reg.Executables {
		fmt.Printf("%s executable, %d component(s), needs %d processors\n",
			e.Kind, len(e.Components), e.Size())
	}
	// Output:
	// multi-component executable, 3 component(s), needs 20 processors
	// single-component executable, 1 component(s), needs -1 processors
	// single-component executable, 1 component(s), needs -1 processors
}

// ExampleBuilder constructs the same layout programmatically.
func ExampleBuilder() {
	reg, err := registry.NewBuilder().
		MultiComponent(
			registry.Line{Name: "atmosphere", Low: 0, High: 15},
			registry.Line{Name: "land", Low: 0, High: 15},
			registry.Line{Name: "chemistry", Low: 16, High: 19},
		).
		Single("coupler").
		Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(reg.TotalComponents(), "components")
	ei, ci, _ := reg.FindComponent("chemistry")
	fmt.Printf("chemistry is component %d of executable %d\n", ci, ei)
	// Output:
	// 4 components
	// chemistry is component 2 of executable 0
}

// ExampleArguments shows the paper's §4.4 argument strings.
func ExampleArguments() {
	args := registry.NewArguments([]string{"inf3", "outf3", "alpha=3", "beta=4.5", "debug=on"})
	alpha, _, _ := args.Int("alpha")
	beta, _, _ := args.Float("beta")
	fname, _ := args.Field(1)
	fmt.Println(alpha, beta, fname)
	// Output: 3 4.5 inf3
}
