package registry

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics and that accepted inputs
// re-render to a fixed point (Parse ∘ String is idempotent).
func FuzzParse(f *testing.F) {
	seeds := []string{
		"BEGIN\natmosphere\nocean\nEND\n",
		"BEGIN\nMulti_Component_Begin\na 0 15\nb 0 15\nMulti_Component_End\nEND\n",
		"BEGIN\nMulti_Instance_Begin\nO1 0 7 in1 alpha=3\nO2 8 15\nMulti_Instance_End\nstat\nEND\n",
		"begin\nx\nend\n",
		"BEGIN\n! only comments\nx\nEND\n",
		"",
		"BEGIN",
		"BEGIN\nMulti_Component_Begin\nEND\n",
		"BEGIN\nocean -1 5\nEND\n",
		strings.Repeat("BEGIN\n", 10),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		reg, err := Parse(text)
		if err != nil {
			return
		}
		rendered := reg.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-parse of accepted input failed: %v\ninput: %q\nrendered: %q", err, text, rendered)
		}
		if again.String() != rendered {
			t.Fatalf("String not a fixed point:\n%q\nvs\n%q", rendered, again.String())
		}
	})
}

// FuzzArguments asserts typed argument access never panics.
func FuzzArguments(f *testing.F) {
	f.Add("alpha=3", "alpha")
	f.Add("beta=4.5", "beta")
	f.Add("debug=on", "debug")
	f.Add("", "")
	f.Add("x=", "x")
	f.Add("=y", "")
	f.Fuzz(func(t *testing.T, field, key string) {
		a := NewArguments([]string{field})
		a.Int(key)
		a.Float(key)
		a.Bool(key)
		a.String(key)
		a.Field(1)
		a.Field(0)
	})
}
