// Package registry parses and validates MPH component registration files
// (the "processors_map.in" of the paper). The file is the single runtime
// input that names every component, groups components into executables, and
// assigns executable-local processor ranges — nothing is hard-coded in the
// application (paper §3, §4).
//
// Grammar (one directive or entry per line, '!' starts a comment):
//
//	BEGIN
//	  <name> [field ...]                      single-component executable
//	  Multi_Component_Begin
//	    <name> <low> <high> [field ...]       component of the executable
//	    ...
//	  Multi_Component_End
//	  Multi_Instance_Begin
//	    <name> <low> <high> [field ...]       instance of the executable
//	    ...
//	  Multi_Instance_End
//	END
//
// Ranges are executable-local processor indices, inclusive. Components of a
// multi-component executable may overlap (paper §4.2); instances of a
// multi-instance executable may not (each instance is a replica on its own
// processor subset, §2.5). Up to MaxFields argument strings — positional
// ("infile3") or key=value ("alpha=3") — may follow each ranged line (§4.4).
package registry

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Limits stated by the paper (§4.3, §4.4).
const (
	// MaxComponents is the maximum number of components in one
	// multi-component executable ("each executable could contain up to 10
	// components").
	MaxComponents = 10
	// MaxFields is the maximum number of argument strings per component or
	// instance line ("up to 5 character strings can be appended").
	MaxFields = 5
)

// Kind classifies an executable entry.
type Kind int

// Executable kinds.
const (
	// SingleComponent is a stand-alone executable holding one component
	// (SCME entries, and the whole application in SCSE).
	SingleComponent Kind = iota
	// MultiComponent is one executable holding several components on
	// possibly overlapping executable-local processor ranges (MCSE/MCME).
	MultiComponent
	// MultiInstance is one executable replicated on disjoint processor
	// subsets, one component per instance (MIME, §2.5).
	MultiInstance
)

// String returns the registration-file spelling of the kind.
func (k Kind) String() string {
	switch k {
	case SingleComponent:
		return "single-component"
	case MultiComponent:
		return "multi-component"
	case MultiInstance:
		return "multi-instance"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Component is one named component (or instance) of an executable.
type Component struct {
	// Name is the unique component name-tag.
	Name string
	// Low and High are the inclusive executable-local processor range.
	// Both are -1 for bare single-component entries, whose size is fixed
	// by the job launcher, not the file (§2.3).
	Low, High int
	// Fields holds the argument strings from the line, in order.
	Fields []string
	// Line is the 1-based source line, for diagnostics.
	Line int
}

// Ranged reports whether the component carries an explicit processor range.
func (c Component) Ranged() bool { return c.Low >= 0 }

// NProcs returns the number of executable-local processors the component
// spans, or -1 if the range is unspecified.
func (c Component) NProcs() int {
	if !c.Ranged() {
		return -1
	}
	return c.High - c.Low + 1
}

// Covers reports whether executable-local processor p runs this component.
func (c Component) Covers(p int) bool { return c.Ranged() && p >= c.Low && p <= c.High }

// Executable is one entry of the registration file.
type Executable struct {
	Kind       Kind
	Components []Component
	// Line is the 1-based source line the entry starts on.
	Line int
}

// Size returns the number of processors the executable needs, computed as
// max(High)+1 over its components, or -1 when unspecified (bare
// single-component entries).
func (e Executable) Size() int {
	size := -1
	for _, c := range e.Components {
		if c.Ranged() && c.High+1 > size {
			size = c.High + 1
		}
	}
	return size
}

// ComponentNames returns the entry's component names in file order.
func (e Executable) ComponentNames() []string {
	names := make([]string, len(e.Components))
	for i, c := range e.Components {
		names[i] = c.Name
	}
	return names
}

// Registry is a parsed registration file.
type Registry struct {
	Executables []Executable
	// Source is the raw text the registry was parsed from; the handshake
	// broadcasts it verbatim (paper §6: "read by the root processor ...
	// and broadcast to all processors").
	Source string
}

// ParseError reports a malformed registration file with its source line.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface with the offending line number.
func (e *ParseError) Error() string {
	return fmt.Sprintf("registry: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// directive spellings. Matching is case-insensitive, like Fortran input.
const (
	kwBegin        = "begin"
	kwEnd          = "end"
	kwMultiCompBeg = "multi_component_begin"
	kwMultiCompEnd = "multi_component_end"
	kwMultiInstBeg = "multi_instance_begin"
	kwMultiInstEnd = "multi_instance_end"
)

// reserved reports whether a token is a directive and so cannot name a
// component.
func reserved(tok string) bool {
	switch strings.ToLower(tok) {
	case kwBegin, kwEnd, kwMultiCompBeg, kwMultiCompEnd, kwMultiInstBeg, kwMultiInstEnd:
		return true
	}
	return false
}

// Parse reads a registration file from text.
func Parse(text string) (*Registry, error) {
	reg := &Registry{Source: text}
	lines := strings.Split(text, "\n")

	type state int
	const (
		beforeBegin state = iota
		top
		inMultiComp
		inMultiInst
		afterEnd
	)
	st := beforeBegin
	var cur *Executable

	for i, raw := range lines {
		lineNo := i + 1
		line := raw
		if idx := strings.IndexByte(line, '!'); idx >= 0 {
			line = line[:idx]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		head := strings.ToLower(fields[0])

		switch st {
		case beforeBegin:
			if head != kwBegin {
				return nil, errf(lineNo, "expected BEGIN, got %q", fields[0])
			}
			st = top

		case top:
			switch head {
			case kwEnd:
				st = afterEnd
			case kwMultiCompBeg:
				reg.Executables = append(reg.Executables, Executable{Kind: MultiComponent, Line: lineNo})
				cur = &reg.Executables[len(reg.Executables)-1]
				st = inMultiComp
			case kwMultiInstBeg:
				reg.Executables = append(reg.Executables, Executable{Kind: MultiInstance, Line: lineNo})
				cur = &reg.Executables[len(reg.Executables)-1]
				st = inMultiInst
			case kwBegin, kwMultiCompEnd, kwMultiInstEnd:
				return nil, errf(lineNo, "unexpected directive %q", fields[0])
			default:
				comp, err := parseBareLine(fields, lineNo)
				if err != nil {
					return nil, err
				}
				reg.Executables = append(reg.Executables, Executable{
					Kind:       SingleComponent,
					Components: []Component{comp},
					Line:       lineNo,
				})
			}

		case inMultiComp, inMultiInst:
			closer := kwMultiCompEnd
			if st == inMultiInst {
				closer = kwMultiInstEnd
			}
			if head == closer {
				if len(cur.Components) == 0 {
					return nil, errf(lineNo, "empty %s block", cur.Kind)
				}
				cur = nil
				st = top
				continue
			}
			if reserved(fields[0]) {
				return nil, errf(lineNo, "unexpected directive %q inside %s block", fields[0], cur.Kind)
			}
			comp, err := parseRangedLine(fields, lineNo)
			if err != nil {
				return nil, err
			}
			cur.Components = append(cur.Components, comp)

		case afterEnd:
			return nil, errf(lineNo, "content after END: %q", fields[0])
		}
	}

	switch st {
	case beforeBegin:
		return nil, errf(len(lines), "missing BEGIN")
	case top, inMultiComp, inMultiInst:
		return nil, errf(len(lines), "missing END")
	}
	if err := reg.Validate(); err != nil {
		return nil, err
	}
	return reg, nil
}

// ParseFile reads and parses a registration file from disk.
func ParseFile(path string) (*Registry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("registry: %w", err)
	}
	return Parse(string(data))
}

// parseBareLine parses "name [field ...]" (single-component entry).
func parseBareLine(fields []string, line int) (Component, error) {
	name := fields[0]
	args := fields[1:]
	if len(args) > MaxFields {
		return Component{}, errf(line, "component %q: %d argument fields exceed the limit of %d", name, len(args), MaxFields)
	}
	return Component{Name: name, Low: -1, High: -1, Fields: append([]string(nil), args...), Line: line}, nil
}

// parseRangedLine parses "name low high [field ...]".
func parseRangedLine(fields []string, line int) (Component, error) {
	if len(fields) < 3 {
		return Component{}, errf(line, "component %q: expected \"name low high\", got %d tokens", fields[0], len(fields))
	}
	low, err := strconv.Atoi(fields[1])
	if err != nil {
		return Component{}, errf(line, "component %q: bad low processor %q", fields[0], fields[1])
	}
	high, err := strconv.Atoi(fields[2])
	if err != nil {
		return Component{}, errf(line, "component %q: bad high processor %q", fields[0], fields[2])
	}
	if low < 0 || high < low {
		return Component{}, errf(line, "component %q: invalid processor range %d..%d", fields[0], low, high)
	}
	args := fields[3:]
	if len(args) > MaxFields {
		return Component{}, errf(line, "component %q: %d argument fields exceed the limit of %d", fields[0], len(args), MaxFields)
	}
	return Component{Name: fields[0], Low: low, High: high, Fields: append([]string(nil), args...), Line: line}, nil
}

// Validate checks the cross-entry invariants: unique component names,
// per-executable component limits, and disjoint instance ranges.
func (r *Registry) Validate() error {
	if len(r.Executables) == 0 {
		return errf(0, "no executables between BEGIN and END")
	}
	seen := make(map[string]int) // name -> line
	for _, e := range r.Executables {
		// The 10-component limit applies to multi-component executables;
		// "there is no limit of the number of instances" (§4.4).
		if e.Kind == MultiComponent && len(e.Components) > MaxComponents {
			return errf(e.Line, "%s executable has %d components, limit is %d", e.Kind, len(e.Components), MaxComponents)
		}
		for _, c := range e.Components {
			if prev, dup := seen[c.Name]; dup {
				return errf(c.Line, "component name %q already used on line %d", c.Name, prev)
			}
			seen[c.Name] = c.Line
		}
		if e.Kind == MultiInstance {
			if err := checkDisjoint(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkDisjoint verifies that instance ranges within a multi-instance
// executable do not overlap.
func checkDisjoint(e Executable) error {
	comps := append([]Component(nil), e.Components...)
	sort.Slice(comps, func(i, j int) bool { return comps[i].Low < comps[j].Low })
	for i := 1; i < len(comps); i++ {
		if comps[i].Low <= comps[i-1].High {
			return errf(comps[i].Line, "instance %q range %d..%d overlaps instance %q range %d..%d",
				comps[i].Name, comps[i].Low, comps[i].High,
				comps[i-1].Name, comps[i-1].Low, comps[i-1].High)
		}
	}
	return nil
}

// FindComponent locates a component by name. It returns the indices of the
// owning executable and of the component within it.
func (r *Registry) FindComponent(name string) (exec, comp int, ok bool) {
	for ei, e := range r.Executables {
		for ci, c := range e.Components {
			if c.Name == name {
				return ei, ci, true
			}
		}
	}
	return 0, 0, false
}

// ComponentNames returns every component name in file order.
func (r *Registry) ComponentNames() []string {
	var names []string
	for _, e := range r.Executables {
		names = append(names, e.ComponentNames()...)
	}
	return names
}

// TotalComponents returns the number of components across all executables.
func (r *Registry) TotalComponents() int {
	n := 0
	for _, e := range r.Executables {
		n += len(e.Components)
	}
	return n
}

// FindExecutableByNames returns the index of the executable whose component
// name set equals names (order-insensitive). The handshake uses it to match
// a setup call against the file (paper §4.2: name-tags "must match the
// processors_map.in file").
func (r *Registry) FindExecutableByNames(names []string) (int, bool) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	if len(want) != len(names) {
		return 0, false // duplicate names in the call
	}
	for ei, e := range r.Executables {
		if len(e.Components) != len(names) {
			continue
		}
		all := true
		for _, c := range e.Components {
			if !want[c.Name] {
				all = false
				break
			}
		}
		if all {
			return ei, true
		}
	}
	return 0, false
}

// FindMultiInstanceByPrefix returns the index of the multi-instance
// executable whose every instance name begins with prefix (paper §4.4: "the
// component name prefix ... determines that all instances of this executable
// must have component names using this prefix").
func (r *Registry) FindMultiInstanceByPrefix(prefix string) (int, bool) {
	for ei, e := range r.Executables {
		if e.Kind != MultiInstance {
			continue
		}
		all := true
		for _, c := range e.Components {
			if !strings.HasPrefix(c.Name, prefix) {
				all = false
				break
			}
		}
		if all {
			return ei, true
		}
	}
	return 0, false
}

// String renders the registry back into registration-file syntax.
func (r *Registry) String() string {
	var b strings.Builder
	b.WriteString("BEGIN\n")
	for _, e := range r.Executables {
		switch e.Kind {
		case SingleComponent:
			c := e.Components[0]
			b.WriteString(c.Name)
			for _, f := range c.Fields {
				b.WriteString(" " + f)
			}
			b.WriteString("\n")
		case MultiComponent, MultiInstance:
			open, closeKw := "Multi_Component_Begin", "Multi_Component_End"
			if e.Kind == MultiInstance {
				open, closeKw = "Multi_Instance_Begin", "Multi_Instance_End"
			}
			b.WriteString(open + "\n")
			for _, c := range e.Components {
				fmt.Fprintf(&b, "  %s %d %d", c.Name, c.Low, c.High)
				for _, f := range c.Fields {
					b.WriteString(" " + f)
				}
				b.WriteString("\n")
			}
			b.WriteString(closeKw + "\n")
		}
	}
	b.WriteString("END\n")
	return b.String()
}
