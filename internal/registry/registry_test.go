package registry

import (
	"strings"
	"testing"
)

// The SCME example of paper §4.1.
const scmeFile = `
BEGIN
atmosphere
ocean
land
ice
coupler
END
`

// The MCSE example of paper §4.2.
const mcseFile = `
BEGIN
Multi_Component_Begin
atmosphere 0 15
ocean 16 31
coupler 32 35
Multi_Component_End
END
`

// The MCME example of paper §4.3, comments included.
const mcmeFile = `
BEGIN
Multi_Component_Begin ! 1st multi-comp exec
atmosphere 0 15
land       0 15      ! overlap with atm
chemistry 16 19
Multi_Component_End
Multi_Component_Begin ! 2nd multi-comp exec
ocean 0 15
ice  16 31
Multi_Component_End
coupler              ! a single-comp exec
END
`

// The MIME example of paper §4.4.
const mimeFile = `
BEGIN
Multi_Instance_Begin ! a multi-instance exec
Ocean1 0 15 infl outfl logf alpha=3 debug=on
Ocean2 16 31 inf2 outf2 beta=4.5 debug=off
Ocean3 32 47 inf3 dynamics=finite_volume
Multi_Instance_End
statistics ! a single-component exec
END
`

func TestParseSCME(t *testing.T) {
	reg, err := Parse(scmeFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Executables) != 5 {
		t.Fatalf("got %d executables", len(reg.Executables))
	}
	want := []string{"atmosphere", "ocean", "land", "ice", "coupler"}
	for i, e := range reg.Executables {
		if e.Kind != SingleComponent {
			t.Errorf("exec %d kind %v", i, e.Kind)
		}
		if e.Components[0].Name != want[i] {
			t.Errorf("exec %d name %q, want %q", i, e.Components[0].Name, want[i])
		}
		if e.Components[0].Ranged() {
			t.Errorf("exec %d should be unranged", i)
		}
		if e.Size() != -1 {
			t.Errorf("exec %d size %d, want -1", i, e.Size())
		}
	}
}

func TestParseMCSE(t *testing.T) {
	reg, err := Parse(mcseFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Executables) != 1 {
		t.Fatalf("got %d executables", len(reg.Executables))
	}
	e := reg.Executables[0]
	if e.Kind != MultiComponent || len(e.Components) != 3 {
		t.Fatalf("kind %v, %d components", e.Kind, len(e.Components))
	}
	if e.Size() != 36 {
		t.Errorf("size %d, want 36", e.Size())
	}
	ocean := e.Components[1]
	if ocean.Name != "ocean" || ocean.Low != 16 || ocean.High != 31 || ocean.NProcs() != 16 {
		t.Errorf("ocean = %+v", ocean)
	}
	if !ocean.Covers(16) || !ocean.Covers(31) || ocean.Covers(15) || ocean.Covers(32) {
		t.Error("ocean coverage wrong")
	}
}

func TestParseMCME(t *testing.T) {
	reg, err := Parse(mcmeFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Executables) != 3 {
		t.Fatalf("got %d executables", len(reg.Executables))
	}
	if reg.Executables[0].Kind != MultiComponent || len(reg.Executables[0].Components) != 3 {
		t.Errorf("exec 0: %+v", reg.Executables[0])
	}
	if got := reg.Executables[0].Size(); got != 20 {
		t.Errorf("exec 0 size %d, want 20", got)
	}
	if got := reg.Executables[1].Size(); got != 32 {
		t.Errorf("exec 1 size %d, want 32", got)
	}
	if reg.Executables[2].Kind != SingleComponent || reg.Executables[2].Components[0].Name != "coupler" {
		t.Errorf("exec 2: %+v", reg.Executables[2])
	}
	// atmosphere and land overlap completely — legal in multi-component.
	atm := reg.Executables[0].Components[0]
	land := reg.Executables[0].Components[1]
	if atm.Low != land.Low || atm.High != land.High {
		t.Error("expected complete overlap of atmosphere and land")
	}
	if reg.TotalComponents() != 6 {
		t.Errorf("TotalComponents = %d, want 6", reg.TotalComponents())
	}
}

func TestParseMIME(t *testing.T) {
	reg, err := Parse(mimeFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(reg.Executables) != 2 {
		t.Fatalf("got %d executables", len(reg.Executables))
	}
	mi := reg.Executables[0]
	if mi.Kind != MultiInstance || len(mi.Components) != 3 {
		t.Fatalf("exec 0: kind %v, %d instances", mi.Kind, len(mi.Components))
	}
	if mi.Size() != 48 {
		t.Errorf("size %d, want 48", mi.Size())
	}
	o1 := mi.Components[0]
	if len(o1.Fields) != 5 || o1.Fields[0] != "infl" || o1.Fields[4] != "debug=on" {
		t.Errorf("Ocean1 fields %v", o1.Fields)
	}
	idx, ok := reg.FindMultiInstanceByPrefix("Ocean")
	if !ok || idx != 0 {
		t.Errorf("FindMultiInstanceByPrefix = %d, %v", idx, ok)
	}
	if _, ok := reg.FindMultiInstanceByPrefix("Atmos"); ok {
		t.Error("found multi-instance exec for wrong prefix")
	}
}

func TestFindComponent(t *testing.T) {
	reg, err := Parse(mcmeFile)
	if err != nil {
		t.Fatal(err)
	}
	ei, ci, ok := reg.FindComponent("ice")
	if !ok || ei != 1 || ci != 1 {
		t.Errorf("FindComponent(ice) = %d, %d, %v", ei, ci, ok)
	}
	if _, _, ok := reg.FindComponent("nope"); ok {
		t.Error("found nonexistent component")
	}
}

func TestFindExecutableByNames(t *testing.T) {
	reg, err := Parse(mcmeFile)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		names []string
		want  int
		ok    bool
	}{
		{[]string{"atmosphere", "land", "chemistry"}, 0, true},
		{[]string{"chemistry", "atmosphere", "land"}, 0, true}, // order-insensitive
		{[]string{"ocean", "ice"}, 1, true},
		{[]string{"coupler"}, 2, true},
		{[]string{"ocean"}, 0, false},                   // subset does not match
		{[]string{"ocean", "ice", "coupler"}, 0, false}, // superset does not match
		{[]string{"ocean", "ocean"}, 0, false},          // duplicates rejected
	}
	for _, tc := range cases {
		got, ok := reg.FindExecutableByNames(tc.names)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("FindExecutableByNames(%v) = %d, %v; want %d, %v", tc.names, got, ok, tc.want, tc.ok)
		}
	}
}

func TestComponentNamesOrder(t *testing.T) {
	reg, err := Parse(mcmeFile)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"atmosphere", "land", "chemistry", "ocean", "ice", "coupler"}
	got := reg.ComponentNames()
	if len(got) != len(want) {
		t.Fatalf("names %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestRoundTripString(t *testing.T) {
	for _, src := range []string{scmeFile, mcseFile, mcmeFile, mimeFile} {
		reg, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		again, err := Parse(reg.String())
		if err != nil {
			t.Fatalf("re-parse of String() failed: %v\n%s", err, reg.String())
		}
		if again.String() != reg.String() {
			t.Errorf("String() not a fixed point:\n%s\nvs\n%s", reg.String(), again.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"missing begin", "atmosphere\nEND\n", "expected BEGIN"},
		{"missing end", "BEGIN\natmosphere\n", "missing END"},
		{"empty", "", "missing BEGIN"},
		{"empty body", "BEGIN\nEND\n", "no executables"},
		{"content after end", "BEGIN\nocean\nEND\nextra\n", "content after END"},
		{"unterminated block", "BEGIN\nMulti_Component_Begin\nocean 0 3\nEND\n", "unexpected directive"},
		{"empty block", "BEGIN\nMulti_Component_Begin\nMulti_Component_End\nEND\n", "empty"},
		{"bad low", "BEGIN\nMulti_Component_Begin\nocean x 3\nMulti_Component_End\nEND\n", "bad low"},
		{"bad high", "BEGIN\nMulti_Component_Begin\nocean 0 y\nMulti_Component_End\nEND\n", "bad high"},
		{"negative range", "BEGIN\nMulti_Component_Begin\nocean -1 3\nMulti_Component_End\nEND\n", "invalid processor range"},
		{"inverted range", "BEGIN\nMulti_Component_Begin\nocean 5 3\nMulti_Component_End\nEND\n", "invalid processor range"},
		{"missing range", "BEGIN\nMulti_Component_Begin\nocean 5\nMulti_Component_End\nEND\n", "expected"},
		{"duplicate names", "BEGIN\nocean\nocean\nEND\n", "already used"},
		{"duplicate across blocks", "BEGIN\nocean\nMulti_Component_Begin\nocean 0 3\nMulti_Component_End\nEND\n", "already used"},
		{"overlapping instances", "BEGIN\nMulti_Instance_Begin\nO1 0 15\nO2 10 20\nMulti_Instance_End\nEND\n", "overlaps"},
		{"too many fields", "BEGIN\nMulti_Instance_Begin\nO1 0 3 a b c d e f\nMulti_Instance_End\nEND\n", "exceed the limit"},
		{"nested block", "BEGIN\nMulti_Component_Begin\nMulti_Instance_Begin\nMulti_Component_End\nEND\n", "unexpected directive"},
		{"stray closer", "BEGIN\nMulti_Component_End\nEND\n", "unexpected directive"},
		{"double begin", "BEGIN\nBEGIN\nEND\n", "unexpected directive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := Parse("BEGIN\nocean\nocean\nEND\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 3 {
		t.Errorf("error line %d, want 3", pe.Line)
	}
}

func TestOverlapAllowedInMultiComponent(t *testing.T) {
	src := "BEGIN\nMulti_Component_Begin\na 0 15\nb 0 15\nMulti_Component_End\nEND\n"
	if _, err := Parse(src); err != nil {
		t.Fatalf("complete overlap rejected in multi-component: %v", err)
	}
}

func TestTooManyComponents(t *testing.T) {
	var b strings.Builder
	b.WriteString("BEGIN\nMulti_Component_Begin\n")
	for i := 0; i <= MaxComponents; i++ {
		b.WriteString(strings.Repeat("x", i+1) + " 0 3\n")
	}
	b.WriteString("Multi_Component_End\nEND\n")
	if _, err := Parse(b.String()); err == nil {
		t.Fatalf("accepted %d components", MaxComponents+1)
	}
}

func TestCaseInsensitiveDirectives(t *testing.T) {
	src := "begin\nMULTI_COMPONENT_BEGIN\nocean 0 3\nmulti_component_end\nend\n"
	reg, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Executables[0].Kind != MultiComponent {
		t.Errorf("kind %v", reg.Executables[0].Kind)
	}
}

func TestKindString(t *testing.T) {
	if SingleComponent.String() != "single-component" ||
		MultiComponent.String() != "multi-component" ||
		MultiInstance.String() != "multi-instance" {
		t.Error("Kind.String spellings changed")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown Kind should include its value")
	}
}
