package timemgr_test

import (
	"fmt"

	"mph/internal/timemgr"
)

// ExampleSchedule drives a component loop with a coupling alarm every 3
// steps and a restart alarm every 6.
func ExampleSchedule() {
	clock, _ := timemgr.NewClock(0.5, 6)
	sched := timemgr.NewSchedule(clock)
	sched.AddAlarm("couple", 3, 0)
	sched.AddAlarm("restart", 6, 0)
	for !clock.Done() {
		ringing, _ := sched.Advance()
		if len(ringing) > 0 {
			fmt.Printf("step %d (t=%.1f): %v\n", clock.Step(), clock.Time(), ringing)
		}
	}
	// Output:
	// step 3 (t=1.5): [couple]
	// step 6 (t=3.0): [couple restart]
}
