// Package timemgr is a simulation time manager in the style of the CCSM
// share code: an integer-stepped model clock plus periodic alarms that
// drive coupling, restart, and history events. Climate components advance
// in fixed steps and must agree exactly on when to exchange; floating-point
// time comparison is how couplers deadlock, so the clock counts steps as
// integers and converts to model time only for diagnostics.
package timemgr

import "fmt"

// Clock is an integer model clock: step counter plus a fixed step length.
type Clock struct {
	dt    float64
	step  int64
	limit int64 // stop step; <0 means unbounded
}

// NewClock creates a clock with the given step length, stopping after
// stopSteps steps (negative for unbounded).
func NewClock(dt float64, stopSteps int64) (*Clock, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("timemgr: non-positive dt %g", dt)
	}
	return &Clock{dt: dt, limit: stopSteps}, nil
}

// Dt returns the step length.
func (c *Clock) Dt() float64 { return c.dt }

// Step returns the completed step count.
func (c *Clock) Step() int64 { return c.step }

// Time returns the model time (steps × dt).
func (c *Clock) Time() float64 { return float64(c.step) * c.dt }

// Done reports whether the clock reached its stop step.
func (c *Clock) Done() bool { return c.limit >= 0 && c.step >= c.limit }

// Advance moves the clock forward one step. Advancing past the stop step
// is an error — the component loop is broken if it happens.
func (c *Clock) Advance() error {
	if c.Done() {
		return fmt.Errorf("timemgr: advancing a finished clock (step %d)", c.step)
	}
	c.step++
	return nil
}

// Alarm fires every `interval` steps, with an optional offset: it rings
// when (step - offset) is a positive multiple of interval. Alarms are
// evaluated against a clock, so two components with identical clocks agree
// exactly on every ring.
type Alarm struct {
	name     string
	interval int64
	offset   int64
	lastRing int64
}

// NewAlarm creates an alarm ringing every interval steps, first at
// offset+interval.
func NewAlarm(name string, interval, offset int64) (*Alarm, error) {
	if name == "" {
		return nil, fmt.Errorf("timemgr: alarm with no name")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("timemgr: alarm %q with interval %d", name, interval)
	}
	if offset < 0 {
		return nil, fmt.Errorf("timemgr: alarm %q with negative offset %d", name, offset)
	}
	return &Alarm{name: name, interval: interval, offset: offset, lastRing: -1}, nil
}

// Name returns the alarm's name.
func (a *Alarm) Name() string { return a.name }

// Ringing reports whether the alarm rings at the clock's current step. It
// is a pure query; a step rings at most once regardless of how often it is
// asked (use Acknowledge to silence within a step if needed).
func (a *Alarm) Ringing(c *Clock) bool {
	s := c.Step() - a.offset
	return s > 0 && s%a.interval == 0
}

// RingCount returns how many times the alarm has rung up to and including
// the clock's current step.
func (a *Alarm) RingCount(c *Clock) int64 {
	s := c.Step() - a.offset
	if s <= 0 {
		return 0
	}
	return s / a.interval
}

// NextRing returns the step of the next ring strictly after the clock's
// current step.
func (a *Alarm) NextRing(c *Clock) int64 {
	s := c.Step() - a.offset
	if s < 0 {
		return a.offset + a.interval
	}
	return a.offset + (s/a.interval+1)*a.interval
}

// Schedule bundles a clock with named alarms — one per coupling stream,
// restart cadence, history cadence — so a component's main loop reads as
// "advance; for each ringing alarm, act".
type Schedule struct {
	Clock  *Clock
	alarms []*Alarm
}

// NewSchedule creates a schedule over a clock.
func NewSchedule(clock *Clock) *Schedule { return &Schedule{Clock: clock} }

// AddAlarm registers an alarm; names must be unique.
func (s *Schedule) AddAlarm(name string, interval, offset int64) error {
	for _, a := range s.alarms {
		if a.name == name {
			return fmt.Errorf("timemgr: duplicate alarm %q", name)
		}
	}
	a, err := NewAlarm(name, interval, offset)
	if err != nil {
		return err
	}
	s.alarms = append(s.alarms, a)
	return nil
}

// Advance steps the clock and returns the names of the alarms ringing at
// the new step, in registration order.
func (s *Schedule) Advance() ([]string, error) {
	if err := s.Clock.Advance(); err != nil {
		return nil, err
	}
	var ringing []string
	for _, a := range s.alarms {
		if a.Ringing(s.Clock) {
			ringing = append(ringing, a.name)
		}
	}
	return ringing, nil
}

// Ringing reports whether the named alarm rings at the current step.
func (s *Schedule) Ringing(name string) (bool, error) {
	for _, a := range s.alarms {
		if a.name == name {
			return a.Ringing(s.Clock), nil
		}
	}
	return false, fmt.Errorf("timemgr: no alarm %q", name)
}
