package timemgr

import (
	"testing"
	"testing/quick"
)

func TestClockBasics(t *testing.T) {
	c, err := NewClock(0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Dt() != 0.5 || c.Step() != 0 || c.Time() != 0 || c.Done() {
		t.Fatal("fresh clock state wrong")
	}
	for i := 0; i < 4; i++ {
		if err := c.Advance(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Step() != 4 || c.Time() != 2 || !c.Done() {
		t.Fatalf("step %d time %g done %v", c.Step(), c.Time(), c.Done())
	}
	if err := c.Advance(); err == nil {
		t.Fatal("advanced past stop step")
	}
}

func TestClockValidationAndUnbounded(t *testing.T) {
	if _, err := NewClock(0, 1); err == nil {
		t.Error("dt=0 accepted")
	}
	if _, err := NewClock(-1, 1); err == nil {
		t.Error("dt<0 accepted")
	}
	c, _ := NewClock(1, -1)
	for i := 0; i < 1000; i++ {
		if err := c.Advance(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Done() {
		t.Error("unbounded clock finished")
	}
}

func TestAlarmRings(t *testing.T) {
	c, _ := NewClock(1, 20)
	a, err := NewAlarm("couple", 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	var rings []int64
	for !c.Done() {
		c.Advance()
		if a.Ringing(c) {
			rings = append(rings, c.Step())
		}
	}
	want := []int64{5, 10, 15, 20}
	if len(rings) != len(want) {
		t.Fatalf("rings %v", rings)
	}
	for i := range want {
		if rings[i] != want[i] {
			t.Fatalf("rings %v", rings)
		}
	}
	if a.RingCount(c) != 4 {
		t.Errorf("RingCount %d", a.RingCount(c))
	}
}

func TestAlarmOffset(t *testing.T) {
	c, _ := NewClock(1, 12)
	a, _ := NewAlarm("history", 4, 2) // rings at 6, 10
	var rings []int64
	for !c.Done() {
		c.Advance()
		if a.Ringing(c) {
			rings = append(rings, c.Step())
		}
	}
	if len(rings) != 2 || rings[0] != 6 || rings[1] != 10 {
		t.Fatalf("rings %v", rings)
	}
}

func TestAlarmNextRing(t *testing.T) {
	c, _ := NewClock(1, -1)
	a, _ := NewAlarm("x", 5, 2)
	if a.NextRing(c) != 7 {
		t.Fatalf("NextRing at 0 = %d", a.NextRing(c))
	}
	for i := 0; i < 7; i++ {
		c.Advance()
	}
	if a.NextRing(c) != 12 {
		t.Fatalf("NextRing at 7 = %d", a.NextRing(c))
	}
}

func TestAlarmValidation(t *testing.T) {
	if _, err := NewAlarm("", 5, 0); err == nil {
		t.Error("unnamed alarm accepted")
	}
	if _, err := NewAlarm("x", 0, 0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewAlarm("x", 5, -1); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestScheduleDrivesLoop(t *testing.T) {
	c, _ := NewClock(0.5, 12)
	s := NewSchedule(c)
	if err := s.AddAlarm("couple", 3, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.AddAlarm("restart", 6, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.AddAlarm("couple", 4, 0); err == nil {
		t.Fatal("duplicate alarm accepted")
	}
	if err := s.AddAlarm("bad", 0, 0); err == nil {
		t.Fatal("invalid alarm accepted")
	}
	couples, restarts := 0, 0
	for !c.Done() {
		ringing, err := s.Advance()
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range ringing {
			switch name {
			case "couple":
				couples++
			case "restart":
				restarts++
			}
		}
	}
	if couples != 4 || restarts != 2 {
		t.Fatalf("couples %d restarts %d", couples, restarts)
	}
	// Step 12 rings both; registration order is preserved.
	ok, err := s.Ringing("restart")
	if err != nil || !ok {
		t.Fatalf("Ringing(restart) = %v, %v", ok, err)
	}
	if _, err := s.Ringing("ghost"); err == nil {
		t.Fatal("unknown alarm accepted")
	}
}

func TestTwoClocksAgreeExactly(t *testing.T) {
	// The design point: two components with the same (dt, interval) agree
	// on every ring step, for any interval/offset — integer arithmetic,
	// no float drift.
	prop := func(intervalRaw, offsetRaw uint8, stepsRaw uint16) bool {
		interval := int64(intervalRaw%20) + 1
		offset := int64(offsetRaw % 10)
		steps := int64(stepsRaw % 500)
		c1, _ := NewClock(1.0/3.0, steps) // deliberately non-representable dt
		c2, _ := NewClock(1.0/3.0, steps)
		a1, _ := NewAlarm("x", interval, offset)
		a2, _ := NewAlarm("x", interval, offset)
		for !c1.Done() {
			c1.Advance()
			c2.Advance()
			if a1.Ringing(c1) != a2.Ringing(c2) {
				return false
			}
		}
		return a1.RingCount(c1) == a2.RingCount(c2)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
