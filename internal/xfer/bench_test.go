package xfer_test

import (
	"fmt"
	"testing"

	"mph/internal/grid"
	"mph/internal/mpi"
	"mph/internal/xfer"
)

// BenchmarkTranspose measures the all-to-all row-to-column redistribution
// across processor counts and grid sizes.
func BenchmarkTranspose(b *testing.B) {
	for _, p := range []int{2, 4, 8} {
		for _, n := range []int{32, 128} {
			b.Run(fmt.Sprintf("p=%d/%dx%d", p, n, n), func(b *testing.B) {
				g, err := grid.New(n, n)
				if err != nil {
					b.Fatal(err)
				}
				rows, _ := grid.NewDecomp(g, p)
				cols, _ := grid.NewColDecomp(g, p)
				b.SetBytes(int64(g.Cells() * 8))
				err = mpi.RunWorld(p, func(c *mpi.Comm) error {
					f := grid.NewField(rows, c.Rank())
					f.FillFunc(func(lat, lon int) float64 { return float64(lat + lon) })
					for i := 0; i < b.N; i++ {
						if _, err := xfer.Transpose(c, rows, cols, f); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkMToNTransfer isolates the redistribution cost without the MPH
// handshake around it (compare with the repo-root E4 benchmark).
func BenchmarkMToNTransfer(b *testing.B) {
	for _, mn := range [][2]int{{2, 2}, {4, 4}, {8, 2}} {
		b.Run(fmt.Sprintf("%dto%d", mn[0], mn[1]), func(b *testing.B) {
			g, err := grid.New(128, 64)
			if err != nil {
				b.Fatal(err)
			}
			src, _ := grid.NewDecomp(g, mn[0])
			dst, _ := grid.NewDecomp(g, mn[1])
			r, err := xfer.NewRouter(src, dst)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(g.Cells() * 8))
			err = mpi.RunWorld(mn[0]+mn[1], func(c *mpi.Comm) error {
				spec := xfer.Spec{SrcOffset: 0, DstOffset: mn[0], SrcProc: -1, DstProc: -1}
				if c.Rank() < mn[0] {
					spec.SrcProc = c.Rank()
					f := grid.NewField(src, spec.SrcProc)
					f.FillFunc(func(lat, lon int) float64 { return float64(lat) })
					spec.Field = f
				} else {
					spec.DstProc = c.Rank() - mn[0]
				}
				for i := 0; i < b.N; i++ {
					spec.Tag = i % 1024
					if _, err := xfer.Transfer(c, r, spec); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkBundledVsPerField is the message-aggregation ablation: moving k
// fields as one bundle (one message per sender-receiver pair) versus k
// separate transfers.
func BenchmarkBundledVsPerField(b *testing.B) {
	const m, n, k = 4, 4, 8
	g, err := grid.New(64, 32)
	if err != nil {
		b.Fatal(err)
	}
	src, _ := grid.NewDecomp(g, m)
	dst, _ := grid.NewDecomp(g, n)
	names := make([]string, k)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}

	b.Run("bundled", func(b *testing.B) {
		b.SetBytes(int64(k * g.Cells() * 8))
		err := mpi.RunWorld(m+n, func(c *mpi.Comm) error {
			r, err := xfer.NewRouter(src, dst)
			if err != nil {
				return err
			}
			spec := xfer.BundleSpec{SrcOffset: 0, DstOffset: m, SrcProc: -1, DstProc: -1}
			if c.Rank() < m {
				spec.SrcProc = c.Rank()
				fields := make([]*grid.Field, k)
				for i := range fields {
					fields[i] = grid.NewField(src, spec.SrcProc)
				}
				bundle, err := xfer.NewBundle(names, fields)
				if err != nil {
					return err
				}
				spec.Bundle = bundle
			} else {
				spec.DstProc = c.Rank() - m
			}
			for i := 0; i < b.N; i++ {
				spec.Tag = i % 1024
				if _, err := xfer.TransferBundle(c, r, spec, names); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	})

	b.Run("per-field", func(b *testing.B) {
		b.SetBytes(int64(k * g.Cells() * 8))
		err := mpi.RunWorld(m+n, func(c *mpi.Comm) error {
			r, err := xfer.NewRouter(src, dst)
			if err != nil {
				return err
			}
			spec := xfer.Spec{SrcOffset: 0, DstOffset: m, SrcProc: -1, DstProc: -1}
			var f *grid.Field
			if c.Rank() < m {
				spec.SrcProc = c.Rank()
				f = grid.NewField(src, spec.SrcProc)
			} else {
				spec.DstProc = c.Rank() - m
			}
			for i := 0; i < b.N; i++ {
				for j := 0; j < k; j++ {
					spec.Tag = (i*k + j) % 1024
					spec.Field = f
					if _, err := xfer.Transfer(c, r, spec); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	})
}
