package xfer

import (
	"fmt"

	"mph/internal/grid"
	"mph/internal/mpi"
)

// Bundle is a set of named fields sharing one decomposition and processor
// — the shape of MCT's attribute vectors (the paper's §7 notes MCT builds
// on MPH). Transferring a bundle moves every field with a single message
// per (sender, receiver) pair instead of one message per field, which is
// the difference between k·M·N and M·N messages per coupling exchange.
type Bundle struct {
	names  []string
	fields []*grid.Field
}

// NewBundle creates a bundle from parallel name/field lists. All fields
// must share a decomposition shape and processor; names must be unique and
// non-empty.
func NewBundle(names []string, fields []*grid.Field) (*Bundle, error) {
	if len(names) == 0 || len(names) != len(fields) {
		return nil, fmt.Errorf("xfer: bundle with %d names and %d fields", len(names), len(fields))
	}
	seen := make(map[string]bool, len(names))
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("xfer: bundle field %d has no name", i)
		}
		if seen[n] {
			return nil, fmt.Errorf("xfer: duplicate bundle field %q", n)
		}
		seen[n] = true
		if fields[i] == nil {
			return nil, fmt.Errorf("xfer: bundle field %q is nil", n)
		}
		if fields[i].Decomp.Grid != fields[0].Decomp.Grid ||
			fields[i].Decomp.P != fields[0].Decomp.P ||
			fields[i].P != fields[0].P {
			return nil, fmt.Errorf("xfer: bundle field %q has a different layout", n)
		}
	}
	return &Bundle{
		names:  append([]string(nil), names...),
		fields: append([]*grid.Field(nil), fields...),
	}, nil
}

// Names returns the bundle's field names in order.
func (b *Bundle) Names() []string { return append([]string(nil), b.names...) }

// Len returns the number of fields.
func (b *Bundle) Len() int { return len(b.fields) }

// Field returns the named field.
func (b *Bundle) Field(name string) (*grid.Field, error) {
	for i, n := range b.names {
		if n == name {
			return b.fields[i], nil
		}
	}
	return nil, fmt.Errorf("xfer: bundle has no field %q", name)
}

// BundleSpec describes one rank's role in a TransferBundle; the semantics
// mirror Spec, with the bundle taking the place of the single field.
type BundleSpec struct {
	SrcOffset, DstOffset int
	SrcRanks, DstRanks   []int
	SrcProc, DstProc     int
	Bundle               *Bundle // required when SrcProc >= 0
	Tag                  int
}

// TransferBundle redistributes every field of a bundle from the source to
// the destination decomposition with one message per (sender, receiver)
// pair: each segment's payload concatenates the fields' rows in bundle
// order. Destination ranks receive the reassembled bundle (field names
// are taken from the expected names list, which every receiver must know —
// the coupling contract, not the wire, carries them); other ranks get nil.
func TransferBundle(comm *mpi.Comm, r *Router, spec BundleSpec, names []string) (*Bundle, error) {
	if spec.Tag < 0 {
		return nil, fmt.Errorf("xfer: negative tag %d", spec.Tag)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("xfer: bundle transfer needs the field name list")
	}
	if spec.SrcRanks != nil && len(spec.SrcRanks) != r.Src.P {
		return nil, fmt.Errorf("xfer: SrcRanks has %d entries for %d source processors", len(spec.SrcRanks), r.Src.P)
	}
	if spec.DstRanks != nil && len(spec.DstRanks) != r.Dst.P {
		return nil, fmt.Errorf("xfer: DstRanks has %d entries for %d destination processors", len(spec.DstRanks), r.Dst.P)
	}
	srcRank := func(proc int) int {
		if spec.SrcRanks != nil {
			return spec.SrcRanks[proc]
		}
		return spec.SrcOffset + proc
	}
	dstRank := func(proc int) int {
		if spec.DstRanks != nil {
			return spec.DstRanks[proc]
		}
		return spec.DstOffset + proc
	}
	nlon := r.Src.Grid.NLon
	k := len(names)

	if spec.SrcProc >= 0 {
		b := spec.Bundle
		if b == nil {
			return nil, fmt.Errorf("xfer: source processor %d has no bundle", spec.SrcProc)
		}
		if b.Len() != k {
			return nil, fmt.Errorf("xfer: bundle has %d fields, contract names %d", b.Len(), k)
		}
		for i, n := range names {
			if b.names[i] != n {
				return nil, fmt.Errorf("xfer: bundle field %d is %q, contract says %q", i, b.names[i], n)
			}
		}
		f0 := b.fields[0]
		if f0.Decomp.Grid != r.Src.Grid || f0.Decomp.P != r.Src.P || f0.P != spec.SrcProc {
			return nil, fmt.Errorf("xfer: bundle does not match source processor %d", spec.SrcProc)
		}
		myLo, _ := r.Src.Bands(spec.SrcProc)
		for _, seg := range r.SendPlan(spec.SrcProc) {
			start := (seg.Lo - myLo) * nlon
			end := (seg.Hi - myLo) * nlon
			payload := make([]float64, 0, k*(end-start))
			for _, f := range b.fields {
				payload = append(payload, f.Data[start:end]...)
			}
			if err := comm.SendFloats(dstRank(seg.Peer), spec.Tag, payload); err != nil {
				return nil, fmt.Errorf("xfer: bundle send to dst proc %d: %w", seg.Peer, err)
			}
		}
	}

	if spec.DstProc < 0 {
		return nil, nil
	}
	fields := make([]*grid.Field, k)
	for i := range fields {
		fields[i] = grid.NewField(r.Dst, spec.DstProc)
	}
	myLo, _ := r.Dst.Bands(spec.DstProc)
	for _, seg := range r.RecvPlan(spec.DstProc) {
		xs, _, err := comm.RecvFloats(srcRank(seg.Peer), spec.Tag)
		if err != nil {
			return nil, fmt.Errorf("xfer: bundle recv from src proc %d: %w", seg.Peer, err)
		}
		segCells := seg.Cells(r.Src.Grid)
		if len(xs) != k*segCells {
			return nil, fmt.Errorf("xfer: bundle segment from src proc %d has %d values, want %d",
				seg.Peer, len(xs), k*segCells)
		}
		for i := range fields {
			copy(fields[i].Data[(seg.Lo-myLo)*nlon:], xs[i*segCells:(i+1)*segCells])
		}
	}
	return NewBundle(names, fields)
}
