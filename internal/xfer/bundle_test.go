package xfer_test

import (
	"fmt"
	"testing"

	"mph/internal/grid"
	"mph/internal/mpi"
	"mph/internal/mpi/mpitest"
	"mph/internal/xfer"
)

func makeBundle(t interface{ Fatal(...any) }, d *grid.Decomp, p int, names []string) *xfer.Bundle {
	fields := make([]*grid.Field, len(names))
	for i := range names {
		f := grid.NewField(d, p)
		scale := float64(i + 1)
		f.FillFunc(func(lat, lon int) float64 { return scale * float64(100*lat+lon) })
		fields[i] = f
	}
	b, err := xfer.NewBundle(names, fields)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBundleValidation(t *testing.T) {
	g := mustGrid(t, 8, 4)
	d, _ := grid.NewDecomp(g, 2)
	d2, _ := grid.NewDecomp(g, 3)
	f := grid.NewField(d, 0)
	if _, err := xfer.NewBundle(nil, nil); err == nil {
		t.Error("empty bundle accepted")
	}
	if _, err := xfer.NewBundle([]string{"a"}, []*grid.Field{f, f}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := xfer.NewBundle([]string{""}, []*grid.Field{f}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := xfer.NewBundle([]string{"a", "a"}, []*grid.Field{f, f}); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := xfer.NewBundle([]string{"a"}, []*grid.Field{nil}); err == nil {
		t.Error("nil field accepted")
	}
	if _, err := xfer.NewBundle([]string{"a", "b"}, []*grid.Field{f, grid.NewField(d2, 0)}); err == nil {
		t.Error("mixed layouts accepted")
	}
	b, err := xfer.NewBundle([]string{"t", "q"}, []*grid.Field{f, grid.NewField(d, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 || b.Names()[1] != "q" {
		t.Error("accessors wrong")
	}
	if _, err := b.Field("t"); err != nil {
		t.Error("Field(t) failed")
	}
	if _, err := b.Field("zz"); err == nil {
		t.Error("Field(zz) succeeded")
	}
}

func TestTransferBundleMToN(t *testing.T) {
	const m, n = 3, 2
	g := mustGrid(t, 12, 4)
	src, _ := grid.NewDecomp(g, m)
	dst, _ := grid.NewDecomp(g, n)
	names := []string{"temperature", "humidity", "pressure"}

	mpitest.Run(t, m+n, func(c *mpi.Comm) error {
		r, err := xfer.NewRouter(src, dst)
		if err != nil {
			return err
		}
		spec := xfer.BundleSpec{SrcOffset: 0, DstOffset: m, SrcProc: -1, DstProc: -1, Tag: 5}
		if c.Rank() < m {
			spec.SrcProc = c.Rank()
			spec.Bundle = makeBundle(t, src, spec.SrcProc, names)
		} else {
			spec.DstProc = c.Rank() - m
		}
		out, err := xfer.TransferBundle(c, r, spec, names)
		if err != nil {
			return err
		}
		if spec.DstProc < 0 {
			if out != nil {
				return fmt.Errorf("source-only rank received a bundle")
			}
			return nil
		}
		lo, hi := dst.Bands(spec.DstProc)
		for i, name := range names {
			f, err := out.Field(name)
			if err != nil {
				return err
			}
			scale := float64(i + 1)
			for lat := lo; lat < hi; lat++ {
				for lon := 0; lon < g.NLon; lon++ {
					v, err := f.At(lat, lon)
					if err != nil {
						return err
					}
					if v != scale*float64(100*lat+lon) {
						return fmt.Errorf("%s cell (%d,%d) = %g", name, lat, lon, v)
					}
				}
			}
		}
		return nil
	})
}

func TestTransferBundleContractEnforced(t *testing.T) {
	g := mustGrid(t, 4, 2)
	d, _ := grid.NewDecomp(g, 1)
	mpitest.Run(t, 1, func(c *mpi.Comm) error {
		r, err := xfer.NewRouter(d, d)
		if err != nil {
			return err
		}
		b := makeBundle(t, d, 0, []string{"a", "b"})
		// Missing name list.
		if _, err := xfer.TransferBundle(c, r, xfer.BundleSpec{SrcProc: 0, DstProc: 0, Bundle: b}, nil); err == nil {
			return fmt.Errorf("missing contract accepted")
		}
		// Contract with different names.
		if _, err := xfer.TransferBundle(c, r, xfer.BundleSpec{SrcProc: 0, DstProc: 0, Bundle: b}, []string{"a", "zz"}); err == nil {
			return fmt.Errorf("name mismatch accepted")
		}
		// Contract with different arity.
		if _, err := xfer.TransferBundle(c, r, xfer.BundleSpec{SrcProc: 0, DstProc: 0, Bundle: b}, []string{"a"}); err == nil {
			return fmt.Errorf("arity mismatch accepted")
		}
		// Source without a bundle.
		if _, err := xfer.TransferBundle(c, r, xfer.BundleSpec{SrcProc: 0, DstProc: -1}, []string{"a"}); err == nil {
			return fmt.Errorf("missing bundle accepted")
		}
		// Negative tag.
		if _, err := xfer.TransferBundle(c, r, xfer.BundleSpec{SrcProc: -1, DstProc: -1, Tag: -1}, []string{"a"}); err == nil {
			return fmt.Errorf("negative tag accepted")
		}
		// The happy path on one rank.
		out, err := xfer.TransferBundle(c, r, xfer.BundleSpec{SrcProc: 0, DstProc: 0, Bundle: b}, []string{"a", "b"})
		if err != nil {
			return err
		}
		fa, _ := out.Field("a")
		v, _ := fa.At(0, 1)
		if v != 1 {
			return fmt.Errorf("self-transfer value %g", v)
		}
		return nil
	})
}
