package xfer

import (
	"fmt"

	"mph/internal/grid"
	"mph/internal/mpi"
)

// Transpose redistributes a field between a latitude-band decomposition and
// a longitude-column decomposition over one component's communicator — the
// data motion at the heart of spectral transform models (rows for the
// Fourier phase, columns for the Legendre phase). Both decompositions must
// span the communicator: comm.Size() == rows.P == cols.P, and the calling
// rank owns block comm.Rank() on each side.
//
// The exchange is a single Alltoall: rank p sends rank q the intersection
// block (p's rows) x (q's columns).
func Transpose(comm *mpi.Comm, rows *grid.Decomp, cols *grid.ColDecomp, f *grid.Field) (*grid.ColField, error) {
	if rows.Grid != cols.Grid {
		return nil, fmt.Errorf("xfer: transpose grid mismatch: %dx%d vs %dx%d",
			rows.Grid.NLat, rows.Grid.NLon, cols.Grid.NLat, cols.Grid.NLon)
	}
	if comm.Size() != rows.P || comm.Size() != cols.P {
		return nil, fmt.Errorf("xfer: transpose needs comm size %d == row procs %d == col procs %d",
			comm.Size(), rows.P, cols.P)
	}
	me := comm.Rank()
	if f.Decomp.Grid != rows.Grid || f.Decomp.P != rows.P || f.P != me {
		return nil, fmt.Errorf("xfer: field does not match row processor %d", me)
	}
	nlon := rows.Grid.NLon
	myLo, myHi := rows.Bands(me)

	// Pack one block per destination: my rows restricted to q's columns,
	// row-major within the block.
	parts := make([][]byte, comm.Size())
	for q := 0; q < comm.Size(); q++ {
		cLo, cHi := cols.Cols(q)
		width := cHi - cLo
		block := make([]float64, (myHi-myLo)*width)
		idx := 0
		for lat := myLo; lat < myHi; lat++ {
			rowStart := (lat - myLo) * nlon
			for lon := cLo; lon < cHi; lon++ {
				block[idx] = f.Data[rowStart+lon]
				idx++
			}
		}
		parts[q] = mpi.EncodeFloats(block)
	}

	got, err := comm.Alltoall(parts)
	if err != nil {
		return nil, fmt.Errorf("xfer: transpose alltoall: %w", err)
	}

	// Unpack: block from p holds p's rows of my columns.
	out := grid.NewColField(cols, me)
	cLo, cHi := cols.Cols(me)
	width := cHi - cLo
	for p := 0; p < comm.Size(); p++ {
		block, err := mpi.DecodeFloats(got[p])
		if err != nil {
			return nil, err
		}
		pLo, pHi := rows.Bands(p)
		if len(block) != (pHi-pLo)*width {
			return nil, fmt.Errorf("xfer: transpose block from %d has %d cells, want %d",
				p, len(block), (pHi-pLo)*width)
		}
		idx := 0
		for lat := pLo; lat < pHi; lat++ {
			copy(out.Data[lat*width:lat*width+width], block[idx:idx+width])
			idx += width
		}
	}
	return out, nil
}

// Untranspose is the inverse: from the column decomposition back to the
// latitude-band decomposition.
func Untranspose(comm *mpi.Comm, rows *grid.Decomp, cols *grid.ColDecomp, f *grid.ColField) (*grid.Field, error) {
	if rows.Grid != cols.Grid {
		return nil, fmt.Errorf("xfer: untranspose grid mismatch")
	}
	if comm.Size() != rows.P || comm.Size() != cols.P {
		return nil, fmt.Errorf("xfer: untranspose needs comm size %d == row procs %d == col procs %d",
			comm.Size(), rows.P, cols.P)
	}
	me := comm.Rank()
	if f.Decomp.Grid != cols.Grid || f.Decomp.P != cols.P || f.P != me {
		return nil, fmt.Errorf("xfer: field does not match column processor %d", me)
	}
	cLo, cHi := cols.Cols(me)
	width := cHi - cLo

	// Pack one block per destination: q's rows of my columns.
	parts := make([][]byte, comm.Size())
	for q := 0; q < comm.Size(); q++ {
		qLo, qHi := rows.Bands(q)
		block := make([]float64, (qHi-qLo)*width)
		idx := 0
		for lat := qLo; lat < qHi; lat++ {
			copy(block[idx:idx+width], f.Data[lat*width:lat*width+width])
			idx += width
		}
		parts[q] = mpi.EncodeFloats(block)
	}

	got, err := comm.Alltoall(parts)
	if err != nil {
		return nil, fmt.Errorf("xfer: untranspose alltoall: %w", err)
	}

	out := grid.NewField(rows, me)
	nlon := rows.Grid.NLon
	myLo, myHi := rows.Bands(me)
	for p := 0; p < comm.Size(); p++ {
		block, err := mpi.DecodeFloats(got[p])
		if err != nil {
			return nil, err
		}
		pLo, pHi := cols.Cols(p)
		pWidth := pHi - pLo
		if len(block) != (myHi-myLo)*pWidth {
			return nil, fmt.Errorf("xfer: untranspose block from %d has %d cells, want %d",
				p, len(block), (myHi-myLo)*pWidth)
		}
		idx := 0
		for lat := myLo; lat < myHi; lat++ {
			copy(out.Data[(lat-myLo)*nlon+pLo:(lat-myLo)*nlon+pHi], block[idx:idx+pWidth])
			idx += pWidth
		}
	}
	return out, nil
}
