package xfer_test

import (
	"fmt"
	"testing"

	"mph/internal/grid"
	"mph/internal/mpi"
	"mph/internal/mpi/mpitest"
	"mph/internal/xfer"
)

func TestTransposeCorrectness(t *testing.T) {
	cases := []struct{ nlat, nlon, p int }{
		{8, 8, 1}, {8, 8, 2}, {8, 8, 4}, {12, 5, 3}, {5, 12, 4}, {7, 7, 7},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%dx%d/p=%d", tc.nlat, tc.nlon, tc.p), func(t *testing.T) {
			g := mustGrid(t, tc.nlat, tc.nlon)
			rows, err := grid.NewDecomp(g, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			cols, err := grid.NewColDecomp(g, tc.p)
			if err != nil {
				t.Fatal(err)
			}
			value := func(lat, lon int) float64 { return float64(100*lat + lon) }
			mpitest.Run(t, tc.p, func(c *mpi.Comm) error {
				f := grid.NewField(rows, c.Rank())
				f.FillFunc(value)
				cf, err := xfer.Transpose(c, rows, cols, f)
				if err != nil {
					return err
				}
				lo, hi := cols.Cols(c.Rank())
				for lat := 0; lat < g.NLat; lat++ {
					for lon := lo; lon < hi; lon++ {
						v, err := cf.At(lat, lon)
						if err != nil {
							return err
						}
						if v != value(lat, lon) {
							return fmt.Errorf("cell (%d,%d) = %g, want %g", lat, lon, v, value(lat, lon))
						}
					}
				}
				return nil
			})
		})
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	g := mustGrid(t, 10, 6)
	const p = 3
	rows, _ := grid.NewDecomp(g, p)
	cols, _ := grid.NewColDecomp(g, p)
	mpitest.Run(t, p, func(c *mpi.Comm) error {
		f := grid.NewField(rows, c.Rank())
		f.FillFunc(func(lat, lon int) float64 { return float64(lat*lat - 3*lon) })
		cf, err := xfer.Transpose(c, rows, cols, f)
		if err != nil {
			return err
		}
		back, err := xfer.Untranspose(c, rows, cols, cf)
		if err != nil {
			return err
		}
		for i, v := range back.Data {
			if v != f.Data[i] {
				return fmt.Errorf("round trip cell %d: %g vs %g", i, v, f.Data[i])
			}
		}
		return nil
	})
}

func TestTransposeValidation(t *testing.T) {
	g := mustGrid(t, 8, 8)
	g2 := mustGrid(t, 8, 6)
	rows, _ := grid.NewDecomp(g, 2)
	rows3, _ := grid.NewDecomp(g, 3)
	cols, _ := grid.NewColDecomp(g, 2)
	colsOther, _ := grid.NewColDecomp(g2, 2)
	mpitest.Run(t, 2, func(c *mpi.Comm) error {
		f := grid.NewField(rows, c.Rank())
		if _, err := xfer.Transpose(c, rows, colsOther, f); err == nil {
			return fmt.Errorf("grid mismatch accepted")
		}
		if _, err := xfer.Transpose(c, rows3, cols, f); err == nil {
			return fmt.Errorf("processor mismatch accepted")
		}
		wrongField := grid.NewField(rows, 1-c.Rank())
		if _, err := xfer.Transpose(c, rows, cols, wrongField); err == nil {
			return fmt.Errorf("foreign field accepted")
		}
		cf := grid.NewColField(cols, c.Rank())
		if _, err := xfer.Untranspose(c, rows3, cols, cf); err == nil {
			return fmt.Errorf("untranspose processor mismatch accepted")
		}
		if _, err := xfer.Untranspose(c, rows, colsOther, cf); err == nil {
			return fmt.Errorf("untranspose grid mismatch accepted")
		}
		return nil
	})
}

func TestColDecompProperties(t *testing.T) {
	g := mustGrid(t, 5, 23)
	for _, p := range []int{1, 2, 3, 7, 23, 30} {
		d, err := grid.NewColDecomp(g, p)
		if err != nil {
			t.Fatal(err)
		}
		covered := 0
		totalCells := 0
		for proc := 0; proc < p; proc++ {
			lo, hi := d.Cols(proc)
			if lo != covered {
				t.Fatalf("p=%d proc=%d: gap at %d", p, proc, lo)
			}
			covered = hi
			totalCells += d.OwnedCells(proc)
		}
		if covered != g.NLon || totalCells != g.Cells() {
			t.Fatalf("p=%d: covered %d cells %d", p, covered, totalCells)
		}
		for lon := 0; lon < g.NLon; lon++ {
			owner := d.Owner(lon)
			lo, hi := d.Cols(owner)
			if lon < lo || lon >= hi {
				t.Fatalf("p=%d: owner(%d) = %d with cols [%d,%d)", p, lon, owner, lo, hi)
			}
		}
	}
	if _, err := grid.NewColDecomp(g, 0); err == nil {
		t.Fatal("zero processors accepted")
	}
}

func TestColFieldFillAndAt(t *testing.T) {
	g := mustGrid(t, 4, 9)
	d, _ := grid.NewColDecomp(g, 2)
	f := grid.NewColField(d, 1)
	f.FillFunc(func(lat, lon int) float64 { return float64(10*lat + lon) })
	lo, hi := d.Cols(1)
	for lat := 0; lat < g.NLat; lat++ {
		for lon := lo; lon < hi; lon++ {
			v, err := f.At(lat, lon)
			if err != nil {
				t.Fatal(err)
			}
			if v != float64(10*lat+lon) {
				t.Fatalf("At(%d,%d) = %g", lat, lon, v)
			}
		}
	}
	if _, err := f.At(0, lo-1); err == nil {
		t.Fatal("out-of-slab column accepted")
	}
	if _, err := f.At(g.NLat, lo); err == nil {
		t.Fatal("out-of-range latitude accepted")
	}
}
