// Package xfer implements M-to-N redistribution of distributed fields
// between two components' decompositions, the data-movement use case the
// paper gives for MPH_comm_join (§5.1: "With this joint communicator,
// collective operations such as data redistribution could easily be
// performed") and the service MCT layers on top of MPH.
//
// Both components hold the same logical grid, each block-decomposed over
// its own processor count. A Router computes, per processor, the contiguous
// latitude-band segments it must exchange with the other side; Transfer
// executes the plan with point-to-point messages over a communicator in
// which the source processors occupy one rank block and the destination
// processors another (exactly what CommJoin produces).
package xfer

import (
	"fmt"

	"mph/internal/grid"
	"mph/internal/mpi"
)

// Segment is one contiguous piece of a transfer plan: the latitude bands
// [Lo, Hi) moving between this processor and the peer processor on the
// other decomposition.
type Segment struct {
	Peer   int // processor index on the other decomposition
	Lo, Hi int // half-open latitude band range
}

// Cells returns the number of grid cells the segment carries.
func (s Segment) Cells(g grid.Grid) int { return (s.Hi - s.Lo) * g.NLon }

// Router holds the source and destination decompositions of a transfer and
// computes exchange plans. It is cheap to build (O(M+N)) and immutable.
type Router struct {
	Src, Dst *grid.Decomp
}

// NewRouter validates that both decompositions cover the same grid.
func NewRouter(src, dst *grid.Decomp) (*Router, error) {
	if src == nil || dst == nil {
		return nil, fmt.Errorf("xfer: nil decomposition")
	}
	if src.Grid != dst.Grid {
		return nil, fmt.Errorf("xfer: grid mismatch: %dx%d vs %dx%d",
			src.Grid.NLat, src.Grid.NLon, dst.Grid.NLat, dst.Grid.NLon)
	}
	return &Router{Src: src, Dst: dst}, nil
}

// SendPlan returns the segments source processor p must send, ordered by
// destination processor. Each (sender, receiver) pair exchanges at most one
// segment because block intersections of intervals are intervals.
func (r *Router) SendPlan(p int) []Segment {
	lo, hi := r.Src.Bands(p)
	return intersect(lo, hi, r.Dst)
}

// RecvPlan returns the segments destination processor q must receive,
// ordered by source processor.
func (r *Router) RecvPlan(q int) []Segment {
	lo, hi := r.Dst.Bands(q)
	return intersect(lo, hi, r.Src)
}

// intersect computes the overlap of band range [lo, hi) with every
// processor of the other decomposition.
func intersect(lo, hi int, other *grid.Decomp) []Segment {
	var segs []Segment
	if lo >= hi {
		return segs
	}
	for p := 0; p < other.P; p++ {
		plo, phi := other.Bands(p)
		l, h := maxInt(lo, plo), minInt(hi, phi)
		if l < h {
			segs = append(segs, Segment{Peer: p, Lo: l, Hi: h})
		}
	}
	return segs
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Spec describes one rank's role in a Transfer. A rank may be a source, a
// destination, both, or neither (set the corresponding processor index to
// -1 when absent).
type Spec struct {
	// SrcOffset and DstOffset give the communicator rank of source
	// processor 0 and destination processor 0. With a joined communicator
	// from CommJoin(srcComp, dstComp) these are 0 and the source
	// component's size.
	SrcOffset, DstOffset int
	// SrcRanks and DstRanks, when non-nil, override the affine offset
	// mapping with an explicit communicator rank per processor index —
	// needed when the two processor sets interleave arbitrarily on the
	// communicator (e.g. migrating a component between two layouts of the
	// same world after a Remap).
	SrcRanks, DstRanks []int
	// SrcProc is this rank's processor index on the source decomposition,
	// or -1.
	SrcProc int
	// DstProc is this rank's processor index on the destination
	// decomposition, or -1.
	DstProc int
	// Field is the local slab to send; required when SrcProc >= 0.
	Field *grid.Field
	// Tag distinguishes concurrent transfers on one communicator.
	Tag int
}

// Transfer redistributes a field from the source decomposition to the
// destination decomposition over comm. Every participating rank calls it
// with its Spec; destination ranks receive the assembled local slab, other
// ranks receive nil.
//
// Sends are eager, so a rank that is both source and destination cannot
// deadlock against itself.
func Transfer(comm *mpi.Comm, r *Router, spec Spec) (*grid.Field, error) {
	if spec.Tag < 0 {
		return nil, fmt.Errorf("xfer: negative tag %d", spec.Tag)
	}
	if spec.SrcRanks != nil && len(spec.SrcRanks) != r.Src.P {
		return nil, fmt.Errorf("xfer: SrcRanks has %d entries for %d source processors", len(spec.SrcRanks), r.Src.P)
	}
	if spec.DstRanks != nil && len(spec.DstRanks) != r.Dst.P {
		return nil, fmt.Errorf("xfer: DstRanks has %d entries for %d destination processors", len(spec.DstRanks), r.Dst.P)
	}
	srcRank := func(proc int) int {
		if spec.SrcRanks != nil {
			return spec.SrcRanks[proc]
		}
		return spec.SrcOffset + proc
	}
	dstRank := func(proc int) int {
		if spec.DstRanks != nil {
			return spec.DstRanks[proc]
		}
		return spec.DstOffset + proc
	}
	nlon := r.Src.Grid.NLon

	if spec.SrcProc >= 0 {
		if spec.Field == nil {
			return nil, fmt.Errorf("xfer: source processor %d has no field", spec.SrcProc)
		}
		// Structural match suffices: NewDecomp is deterministic in
		// (grid, P), so two decomps with equal shape partition alike.
		if spec.Field.Decomp.Grid != r.Src.Grid || spec.Field.Decomp.P != r.Src.P ||
			spec.Field.P != spec.SrcProc {
			return nil, fmt.Errorf("xfer: field does not match source processor %d", spec.SrcProc)
		}
		myLo, _ := r.Src.Bands(spec.SrcProc)
		for _, seg := range r.SendPlan(spec.SrcProc) {
			start := (seg.Lo - myLo) * nlon
			end := (seg.Hi - myLo) * nlon
			dst := dstRank(seg.Peer)
			if err := comm.SendFloats(dst, spec.Tag, spec.Field.Data[start:end]); err != nil {
				return nil, fmt.Errorf("xfer: send to dst proc %d: %w", seg.Peer, err)
			}
		}
	}

	if spec.DstProc < 0 {
		return nil, nil
	}
	out := grid.NewField(r.Dst, spec.DstProc)
	myLo, _ := r.Dst.Bands(spec.DstProc)
	for _, seg := range r.RecvPlan(spec.DstProc) {
		src := srcRank(seg.Peer)
		xs, _, err := comm.RecvFloats(src, spec.Tag)
		if err != nil {
			return nil, fmt.Errorf("xfer: recv from src proc %d: %w", seg.Peer, err)
		}
		want := seg.Cells(r.Src.Grid)
		if len(xs) != want {
			return nil, fmt.Errorf("xfer: segment from src proc %d has %d cells, want %d", seg.Peer, len(xs), want)
		}
		copy(out.Data[(seg.Lo-myLo)*nlon:], xs)
	}
	return out, nil
}

// Volume returns the total number of cells the transfer moves (the grid
// size) and the number of point-to-point messages it needs.
func (r *Router) Volume() (cells, messages int) {
	for p := 0; p < r.Src.P; p++ {
		for _, seg := range r.SendPlan(p) {
			cells += seg.Cells(r.Src.Grid)
			messages++
		}
	}
	return cells, messages
}
