package xfer_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"mph/internal/grid"
	"mph/internal/mpi"
	"mph/internal/mpi/mpitest"
	"mph/internal/xfer"
)

func mustGrid(t *testing.T, nlat, nlon int) grid.Grid {
	t.Helper()
	g, err := grid.New(nlat, nlon)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRouterPlansCoverEverything(t *testing.T) {
	g := mustGrid(t, 24, 4)
	for _, mn := range [][2]int{{1, 1}, {3, 5}, {5, 3}, {4, 4}, {24, 2}, {2, 24}, {7, 30}} {
		src, _ := grid.NewDecomp(g, mn[0])
		dst, _ := grid.NewDecomp(g, mn[1])
		r, err := xfer.NewRouter(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		cells, msgs := r.Volume()
		if cells != g.Cells() {
			t.Errorf("M=%d N=%d: plan moves %d cells, want %d", mn[0], mn[1], cells, g.Cells())
		}
		if msgs < maxInt(minNonEmpty(src), minNonEmpty(dst)) {
			t.Errorf("M=%d N=%d: suspicious message count %d", mn[0], mn[1], msgs)
		}
		// Send plans and recv plans must mirror each other.
		type pair struct{ s, d, lo, hi int }
		sends := map[pair]bool{}
		for p := 0; p < src.P; p++ {
			for _, seg := range r.SendPlan(p) {
				sends[pair{p, seg.Peer, seg.Lo, seg.Hi}] = true
			}
		}
		for q := 0; q < dst.P; q++ {
			for _, seg := range r.RecvPlan(q) {
				if !sends[pair{seg.Peer, q, seg.Lo, seg.Hi}] {
					t.Fatalf("recv segment %+v of dst %d has no matching send", seg, q)
				}
				delete(sends, pair{seg.Peer, q, seg.Lo, seg.Hi})
			}
		}
		if len(sends) != 0 {
			t.Fatalf("unmatched send segments: %v", sends)
		}
	}
}

func minNonEmpty(d *grid.Decomp) int {
	n := 0
	for p := 0; p < d.P; p++ {
		if d.OwnedCells(p) > 0 {
			n++
		}
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestNewRouterErrors(t *testing.T) {
	g1 := mustGrid(t, 8, 4)
	g2 := mustGrid(t, 8, 5)
	d1, _ := grid.NewDecomp(g1, 2)
	d2, _ := grid.NewDecomp(g2, 2)
	if _, err := xfer.NewRouter(d1, d2); err == nil {
		t.Error("grid mismatch accepted")
	}
	if _, err := xfer.NewRouter(nil, d1); err == nil {
		t.Error("nil decomp accepted")
	}
}

// runTransfer redistributes a deterministic field from M source ranks to N
// destination ranks on an (M+N)-rank world and verifies every cell.
func runTransfer(t *testing.T, nlat, nlon, m, n int) {
	t.Helper()
	g := mustGrid(t, nlat, nlon)
	src, _ := grid.NewDecomp(g, m)
	dst, _ := grid.NewDecomp(g, n)
	value := func(lat, lon int) float64 { return float64(100*lat + lon) }

	mpitest.Run(t, m+n, func(c *mpi.Comm) error {
		r, err := xfer.NewRouter(src, dst)
		if err != nil {
			return err
		}
		spec := xfer.Spec{SrcOffset: 0, DstOffset: m, SrcProc: -1, DstProc: -1, Tag: 3}
		if c.Rank() < m {
			spec.SrcProc = c.Rank()
			f := grid.NewField(src, spec.SrcProc)
			f.FillFunc(value)
			spec.Field = f
		} else {
			spec.DstProc = c.Rank() - m
		}
		out, err := xfer.Transfer(c, r, spec)
		if err != nil {
			return err
		}
		if spec.DstProc < 0 {
			if out != nil {
				return fmt.Errorf("source-only rank got a field")
			}
			return nil
		}
		lo, hi := dst.Bands(spec.DstProc)
		for lat := lo; lat < hi; lat++ {
			for lon := 0; lon < g.NLon; lon++ {
				v, err := out.At(lat, lon)
				if err != nil {
					return err
				}
				if v != value(lat, lon) {
					return fmt.Errorf("cell (%d,%d) = %g, want %g", lat, lon, v, value(lat, lon))
				}
			}
		}
		return nil
	})
}

func TestTransferMToN(t *testing.T) {
	cases := [][2]int{{1, 1}, {1, 4}, {4, 1}, {3, 5}, {5, 3}, {4, 4}, {2, 7}}
	for _, mn := range cases {
		mn := mn
		t.Run(fmt.Sprintf("%dto%d", mn[0], mn[1]), func(t *testing.T) {
			runTransfer(t, 16, 3, mn[0], mn[1])
		})
	}
}

func TestTransferTinyGrid(t *testing.T) {
	// More processors than latitude bands on both sides.
	runTransfer(t, 2, 2, 3, 4)
}

func TestTransferSameRankBothRoles(t *testing.T) {
	// A 2-rank world where every rank is both a source and a destination
	// (source decomp over 2, dest decomp over 2, shifted balance).
	g := mustGrid(t, 10, 2)
	src, _ := grid.NewDecomp(g, 2)
	dst, _ := grid.NewDecomp(g, 2)
	mpitest.Run(t, 2, func(c *mpi.Comm) error {
		r, err := xfer.NewRouter(src, dst)
		if err != nil {
			return err
		}
		f := grid.NewField(src, c.Rank())
		f.FillFunc(func(lat, lon int) float64 { return float64(lat) })
		out, err := xfer.Transfer(c, r, xfer.Spec{
			SrcOffset: 0, DstOffset: 0,
			SrcProc: c.Rank(), DstProc: c.Rank(),
			Field: f, Tag: 0,
		})
		if err != nil {
			return err
		}
		lo, hi := dst.Bands(c.Rank())
		for lat := lo; lat < hi; lat++ {
			v, err := out.At(lat, 0)
			if err != nil {
				return err
			}
			if v != float64(lat) {
				return fmt.Errorf("cell %d = %g", lat, v)
			}
		}
		return nil
	})
}

func TestTransferSpecErrors(t *testing.T) {
	g := mustGrid(t, 4, 2)
	src, _ := grid.NewDecomp(g, 1)
	dst, _ := grid.NewDecomp(g, 1)
	mpitest.Run(t, 1, func(c *mpi.Comm) error {
		r, err := xfer.NewRouter(src, dst)
		if err != nil {
			return err
		}
		// Source without field.
		if _, err := xfer.Transfer(c, r, xfer.Spec{SrcProc: 0, DstProc: -1}); err == nil {
			return fmt.Errorf("missing field accepted")
		}
		// Field bound to the wrong processor.
		f := grid.NewField(src, 0)
		if _, err := xfer.Transfer(c, r, xfer.Spec{SrcProc: 0, DstProc: -1, Field: &grid.Field{Decomp: src, P: 99, Data: f.Data}}); err == nil {
			return fmt.Errorf("mismatched field accepted")
		}
		// Negative tag.
		if _, err := xfer.Transfer(c, r, xfer.Spec{SrcProc: -1, DstProc: -1, Tag: -1}); err == nil {
			return fmt.Errorf("negative tag accepted")
		}
		return nil
	})
}

func TestRouterVolumeProperty(t *testing.T) {
	// For any decomposition pair over the same grid, the plan moves the
	// whole grid exactly once.
	prop := func(nlatRaw, mRaw, nRaw uint8) bool {
		nlat := int(nlatRaw%32) + 1
		m := int(mRaw%8) + 1
		n := int(nRaw%8) + 1
		g, err := grid.New(nlat, 3)
		if err != nil {
			return false
		}
		src, _ := grid.NewDecomp(g, m)
		dst, _ := grid.NewDecomp(g, n)
		r, err := xfer.NewRouter(src, dst)
		if err != nil {
			return false
		}
		cells, _ := r.Volume()
		return cells == g.Cells()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
