#!/bin/sh
# Repository check suite: everything a change must pass before merging.
# The race pass targets internal/mpi because the matching engine is the
# concurrency-critical core; its stress tests are written to run under -race.
# The perf package gets an explicit vet (it is the observability layer every
# future perf PR reports through), and the tracer-overhead benchmark runs
# once as a smoke test that both tracer paths still execute. The chaos pass
# repeats the fault-injection tests under -race: failure paths are the most
# interleaving-sensitive code in the tree. lintdoc enforces doc comments on
# every exported identifier (golint's exported rule, in-tree). The collective
# bench smoke runs one tree and one ring Allgather iteration so both
# algorithm paths of the size-based selector stay executable. The rendezvous
# alloc guard runs the large-send benchmark with -benchmem and fails if the
# send path regrows a payload-sized copy (B/op must stay near one payload —
# the receiver's buffer — for 1 MiB messages). The P2 smoke runs one cell of
# the eager/rendezvous sweep so the mphbench TCP-pair harness stays
# executable. The multi-host smoke launches the climate example across two
# placement hosts through the exec backend (the full agent spawn path, minus
# ssh) with stats on, so the remote-launch machinery stays exercised end to
# end without an sshd. The telemetry smoke reruns that job with live
# reporting on and scrapes the launcher's Prometheus /metrics endpoint
# mid-run (scripts/httpget, so no curl dependency), then asserts the final
# summary reconciles sent == received job-wide. The hierarchical smoke reruns
# the two-host job with the two-level host-aware collectives forced on
# (MPH_COLL_HIER=1) and asserts both that the totals still reconcile and that
# the routing line counts at least one hierarchical selection — proof the
# hier path actually ran across the host boundary, not just that it parsed.
# The shm smoke places all five ranks on ONE host with rendezvous forced
# (MPH_EAGER_THRESHOLD=0) and asserts the summary counts at least one
# intra-host payload frame AND still reconciles — proof the Unix-socket
# payload channel engaged under a real exec-backend launch and lost nothing.
# The daemon smoke starts a real mphd and launches the climate job through it
# (-backend daemon), proving the persistent-agent path works outside the unit
# tests; the L1 smoke keeps the launch-latency harness executable.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go vet ./internal/mpi/perf
go run ./scripts/lintdoc .
go build ./...
go test ./...
go test -race ./internal/mpi/...
go test -run 'Fault|Chaos' -race -count=2 ./internal/mpi/...
go test -run 'Telemetry|ClockOffset' -race ./internal/mpirun
go test -run=NONE -bench=BenchmarkTracerOverhead -benchtime=1x ./internal/mpi
go test -run=NONE -bench=BenchmarkAllgather -benchtime=1x ./internal/mpi

# Rendezvous alloc-regression guard: 1 MiB sends must not allocate beyond
# ~1.7 payloads per op (receiver buffer + slack); 2+ means a sender-side
# payload copy crept back in.
go test -run=NONE -bench=BenchmarkRendezvousSend -benchtime=100x -benchmem \
    ./internal/mpi/tcpnet | tee /tmp/rdvbench.$$
awk '/BenchmarkRendezvousSend/ { for (i = 1; i <= NF; i++) if ($(i+1) == "B/op") bop = $i }
     END { if (bop == "") { print "no B/op reported"; exit 1 }
           if (bop + 0 > 1.7 * 1048576) { print "rendezvous send allocates " bop " B/op, budget 1.7 MiB"; exit 1 } }' \
    /tmp/rdvbench.$$
rm -f /tmp/rdvbench.$$

# P2 smoke: one cell of the eager/rendezvous transport sweep.
go run ./cmd/mphbench -exp P2 -repeat 1 -transportout /tmp/bench_transport.$$.json
rm -f /tmp/bench_transport.$$.json

# Multi-host exec-backend smoke: 5 ranks on two 2-slot hosts (rank 4 wraps).
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
go build -o "$smoke/mphrun" ./cmd/mphrun
go build -o "$smoke/climate" ./examples/climate
cat > "$smoke/job.cmd" <<EOF
1 $smoke/climate -component atmosphere -periods 2 -logdir $smoke
1 $smoke/climate -component ocean      -periods 2 -logdir $smoke
1 $smoke/climate -component land       -periods 2 -logdir $smoke
1 $smoke/climate -component ice        -periods 2 -logdir $smoke
1 $smoke/climate -component coupler    -periods 2 -logdir $smoke
EOF
"$smoke/mphrun" -hosts nodeA:2,nodeB:2 -backend exec -placement block -stats \
    -cmdfile "$smoke/job.cmd" -registration examples/climate/processors_map.in
grep -q "period" "$smoke/coupler.log"

# Hierarchical-collective smoke: same job, uneven 3+2 placement, hier forced.
MPH_COLL_HIER=1 "$smoke/mphrun" -hosts nodeA:3,nodeB:2 -backend exec -placement block -stats \
    -cmdfile "$smoke/job.cmd" -registration examples/climate/processors_map.in \
    > "$smoke/hier.out"
grep -q "totals reconcile" "$smoke/hier.out"
grep -Eq "collective routing: .* hier=[1-9]" "$smoke/hier.out"

# Shm-channel smoke: all 5 ranks on one host, rendezvous forced so payloads
# are eligible for the intra-host channel.
MPH_EAGER_THRESHOLD=0 "$smoke/mphrun" -hosts nodeA:5 -backend exec -placement block -stats \
    -cmdfile "$smoke/job.cmd" -registration examples/climate/processors_map.in \
    > "$smoke/shm.out"
grep -q "totals reconcile" "$smoke/shm.out"
grep -Eq "shm channel: [1-9][0-9]* payload frame" "$smoke/shm.out"

# Daemon smoke: start a real mphd on a loopback port and run the climate job
# through it — the persistent-agent launch path (SpawnBlock gang spawn, event
# streaming, daemon-side reaping) end to end, with the stats summary still
# reconciling. The daemon is killed (and its death tolerated) on exit.
go build -o "$smoke/mphd" ./cmd/mphd
"$smoke/mphd" -listen 127.0.0.1:7641 > "$smoke/mphd.out" 2>&1 &
mphd_pid=$!
trap 'kill "$mphd_pid" 2>/dev/null; rm -rf "$smoke"' EXIT
"$smoke/mphrun" -hosts nodeA:3,nodeB:2 -backend daemon -daemon-addr 127.0.0.1:7641 \
    -placement block -stats \
    -cmdfile "$smoke/job.cmd" -registration examples/climate/processors_map.in \
    > "$smoke/daemon.out"
grep -q "totals reconcile" "$smoke/daemon.out"

# L1 smoke: one repetition of the gang-launch latency sweep, so the
# launch-latency harness (worker mode, agent-exec dispatch, in-process
# daemon) stays executable.
go run ./cmd/mphbench -exp L1 -repeat 1 -launchout /tmp/bench_launch.$$.json
rm -f /tmp/bench_launch.$$.json

# Telemetry smoke: the same job, paced to ~2s of wall-clock (the unpaced
# grid finishes in milliseconds — too fast to scrape), with live reporting.
# The poller starts first (it retries until the launcher's -http server is
# up) and must see per-rank Prometheus series while the job runs, then the
# -stats summary must reconcile job-wide.
go build -o "$smoke/httpget" ./scripts/httpget
cat > "$smoke/telejob.cmd" <<EOF
1 $smoke/climate -component atmosphere -periods 20 -pace 100ms -logdir $smoke
1 $smoke/climate -component ocean      -periods 20 -pace 100ms -logdir $smoke
1 $smoke/climate -component land       -periods 20 -pace 100ms -logdir $smoke
1 $smoke/climate -component ice        -periods 20 -pace 100ms -logdir $smoke
1 $smoke/climate -component coupler    -periods 20 -pace 100ms -logdir $smoke
EOF
"$smoke/httpget" -timeout 60s -pattern mph_rank_sent_messages_total \
    http://127.0.0.1:7399/metrics > "$smoke/metrics.out" &
poller=$!
"$smoke/mphrun" -hosts nodeA:2,nodeB:2 -backend exec -placement block -stats \
    -stats-interval 100ms -http 127.0.0.1:7399 \
    -cmdfile "$smoke/telejob.cmd" -registration examples/climate/processors_map.in \
    > "$smoke/telemetry.out"
wait "$poller"
grep -q "mph_job_ranks_expected 5" "$smoke/metrics.out"
grep -q "totals reconcile" "$smoke/telemetry.out"
