// Command httpget polls a URL until its body contains a pattern, retrying
// while the server is still coming up. It exists for shell-level CI smokes
// (scripts/check.sh) that must scrape a launcher's /metrics endpoint
// mid-job without depending on curl or wget being installed: exit 0 once
// the pattern appears, 1 if the deadline passes first.
//
// Usage:
//
//	httpget -timeout 30s -pattern mph_rank_sent_messages_total URL
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	timeout := flag.Duration("timeout", 30*time.Second, "give up after this long")
	pattern := flag.String("pattern", "", "substring the body must contain (empty = any 200 response)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "httpget: need exactly one URL")
		os.Exit(2)
	}
	url := flag.Arg(0)
	deadline := time.Now().Add(*timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		body, err := get(url)
		if err == nil && strings.Contains(body, *pattern) {
			fmt.Print(body)
			return
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("body does not contain %q", *pattern)
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Fprintf(os.Stderr, "httpget: %s: %v\n", url, lastErr)
	os.Exit(1)
}

func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %s", resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(body), nil
}
