// Command lintdoc is the repository's exported-comment linter: every
// exported identifier in non-test Go source must carry a doc comment, and
// the comment must open with the identifier it documents (types may lead
// with an article), in the style golint/revive enforce. It is kept in-tree
// (stdlib go/ast only, no module downloads) so scripts/check.sh and CI can
// run it anywhere the Go toolchain exists.
//
// Usage:
//
//	go run ./scripts/lintdoc [dir ...]
//
// With no arguments the current directory tree is linted. Exit status is 1
// when any exported identifier lacks a comment or any doc comment fails the
// prefix rule, 2 on usage or parse errors. The prefix rule is checked on
// declarations whose doc is unambiguously theirs: functions, methods, and
// types always; consts and vars only when the comment sits on a single-name
// spec or a single-spec declaration (a grouped block's shared comment
// legitimately names none of its members).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	bad := 0
	for _, root := range roots {
		n, err := lintTree(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lintdoc: %v\n", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintdoc: %d doc-comment finding(s) on exported identifiers\n", bad)
		os.Exit(1)
	}
}

// lintTree walks one directory tree and lints every non-test Go file,
// returning the number of findings.
func lintTree(root string) (int, error) {
	bad := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "vendor" || name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		n, err := lintFile(path)
		bad += n
		return err
	})
	return bad, err
}

// lintFile parses one file and reports exported identifiers lacking a doc
// comment on their declaration (or, for grouped specs, on the spec itself).
func lintFile(path string) (int, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		fmt.Printf("%s: exported %s %s should have a doc comment\n", fset.Position(pos), kind, name)
		bad++
	}
	checkPrefix := func(doc *ast.CommentGroup, kind string, name *ast.Ident, allowArticle bool) {
		if doc == nil || docStartsWithName(doc, name.Name, allowArticle) {
			return
		}
		fmt.Printf("%s: comment on exported %s %s should start with %q\n",
			fset.Position(name.Pos()), kind, name.Name, name.Name)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() {
				continue
			}
			if d.Recv != nil && !receiverExported(d.Recv) {
				continue // method on an unexported type: not part of the API surface
			}
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			if d.Doc == nil {
				report(d.Name.Pos(), kind, d.Name.Name)
				continue
			}
			checkPrefix(d.Doc, kind, d.Name, false)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					if d.Doc == nil && s.Doc == nil {
						report(s.Name.Pos(), "type", s.Name.Name)
						continue
					}
					if doc := s.Doc; doc != nil {
						checkPrefix(doc, "type", s.Name, true)
					} else if len(d.Specs) == 1 {
						checkPrefix(d.Doc, "type", s.Name, true)
					}
				case *ast.ValueSpec:
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					for _, name := range s.Names {
						if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							report(name.Pos(), kind, name.Name)
						}
					}
					// The prefix rule needs a comment that names exactly one
					// identifier: a spec-level doc on a single-name spec, or
					// the decl doc of a single-spec, single-name declaration.
					if len(s.Names) != 1 || !s.Names[0].IsExported() {
						continue
					}
					if doc := s.Doc; doc != nil {
						checkPrefix(doc, kind, s.Names[0], false)
					} else if len(d.Specs) == 1 {
						checkPrefix(d.Doc, kind, s.Names[0], false)
					}
				}
			}
		}
	}
	return bad, nil
}

// docStartsWithName reports whether a doc comment's text opens with the
// identifier it documents, followed by a word boundary. Types may lead with
// an article ("A", "An", "The"); "Deprecated:" notices are exempt, matching
// the convention golint established.
func docStartsWithName(doc *ast.CommentGroup, name string, allowArticle bool) bool {
	text := strings.TrimSpace(doc.Text())
	if text == "" || strings.HasPrefix(text, "Deprecated:") {
		return true
	}
	if allowArticle {
		for _, a := range []string{"A ", "An ", "The "} {
			if strings.HasPrefix(text, a) {
				text = text[len(a):]
				break
			}
		}
	}
	if !strings.HasPrefix(text, name) {
		return false
	}
	rest := text[len(name):]
	if rest == "" {
		return true
	}
	r := rune(rest[0])
	return !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9')
}

// receiverExported reports whether a method's receiver names an exported
// type, unwrapping pointers and type parameters.
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
