// Command lintdoc is the repository's exported-comment linter: every
// exported identifier in non-test Go source must carry a doc comment, in the
// style golint/revive enforce. It is kept in-tree (stdlib go/ast only, no
// module downloads) so scripts/check.sh and CI can run it anywhere the Go
// toolchain exists.
//
// Usage:
//
//	go run ./scripts/lintdoc [dir ...]
//
// With no arguments the current directory tree is linted. Exit status is 1
// when any exported identifier lacks a comment, 2 on usage or parse errors.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	bad := 0
	for _, root := range roots {
		n, err := lintTree(root)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lintdoc: %v\n", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintdoc: %d exported identifier(s) without doc comments\n", bad)
		os.Exit(1)
	}
}

// lintTree walks one directory tree and lints every non-test Go file,
// returning the number of findings.
func lintTree(root string) (int, error) {
	bad := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "vendor" || name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		n, err := lintFile(path)
		bad += n
		return err
	})
	return bad, err
}

// lintFile parses one file and reports exported identifiers lacking a doc
// comment on their declaration (or, for grouped specs, on the spec itself).
func lintFile(path string) (int, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		fmt.Printf("%s: exported %s %s should have a doc comment\n", fset.Position(pos), kind, name)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !receiverExported(d.Recv) {
				continue // method on an unexported type: not part of the API surface
			}
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			report(d.Name.Pos(), kind, d.Name.Name)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Name.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							kind := "var"
							if d.Tok == token.CONST {
								kind = "const"
							}
							report(name.Pos(), kind, name.Name)
						}
					}
				}
			}
		}
	}
	return bad, nil
}

// receiverExported reports whether a method's receiver names an exported
// type, unwrapping pointers and type parameters.
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
